//! Compressed block posting lists with a galloping skip index.
//!
//! A posting list is a strictly ascending sequence of [`TupleId`]s. Raw
//! `u32`s waste most of their bits on such sequences: consecutive ids differ
//! by small, skew-friendly gaps. [`CompressedPostings`] therefore stores each
//! list as a chain of *sealed blocks* of [`BLOCK`] ids — delta-encoded
//! against the previous id and bit-packed to the block's widest gap — plus a
//! small uncompressed *tail* that absorbs in-order appends. Sealing happens
//! exactly once per [`BLOCK`] appends (one pack pass over the full tail), so
//! append stays amortised O(1) and batched ingest throughput is unaffected.
//!
//! Each sealed block records its last id in a 10-byte `BlockMeta` skip
//! entry. Intersections use [`CompressedPostings::cursor`] to *gallop*: a
//! [`PostingsCursor::seek`] binary-searches the block maxima and decodes only
//! the one candidate block, so a k-way intersection driven by the shortest
//! list touches `O(candidates)` blocks instead of every id. The cursor counts
//! its block decodes, keeping sub-linearity assertable from tests.
//!
//! ## Encoding
//!
//! Ids are *delta-1* coded: with `base` = the previous id + 1 (or the start
//! of the chain), each id is stored as `id - base`, so a run of consecutive
//! ids packs to width 0 — zero payload words, the 10-byte skip entry is the
//! whole block. The first id of a block is chained to the previous block's
//! maximum, which keeps the skip entry small and makes strict ascent a
//! structural property: any decodable list is valid.
//!
//! # Examples
//!
//! ```
//! use sitfact_storage::CompressedPostings;
//!
//! let mut list = CompressedPostings::new();
//! for id in 0..300u32 {
//!     list.push(id);
//! }
//! // Two sealed 128-id blocks of consecutive ids (width 0) plus a 44-id tail.
//! assert_eq!((list.len(), list.num_blocks(), list.tail_len()), (300, 2, 44));
//! assert!(list.iter().eq(0..300));
//! assert!(list.approx_heap_bytes() < 300 * 4);
//!
//! // A cursor seeks without decoding earlier blocks.
//! let mut cursor = list.cursor();
//! assert_eq!(cursor.seek(250), Some(250));
//! assert_eq!(cursor.next(), Some(250));
//! assert_eq!(cursor.blocks_decoded(), 1);
//! ```

use sitfact_core::TupleId;

/// Ids per sealed block. A power of two keeps the seal cadence aligned with
/// the batched ingest path, and 128 ids amortise the 10-byte skip entry to
/// under one bit per id while keeping candidate-block decodes cheap.
pub const BLOCK: usize = 128;

/// Skip entry of one sealed block: 10 bytes covering up to 128 ids. Packed —
/// the two `u32` fields are read by value everywhere (references to them
/// would be unaligned), and the 2 bytes saved per block are what push the
/// NBA-shaped index past its 4× compression target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C, packed)]
struct BlockMeta {
    /// Last (largest) id in the block — the skip index key.
    max: TupleId,
    /// Word offset of the block's packed payload in the arena.
    offset: u32,
    /// Bits per stored delta; 0 for a run of consecutive ids (no payload).
    width: u8,
    /// Ids in the block (1..=[`BLOCK`]). Full chains seal at exactly
    /// [`BLOCK`]; [`CompressedPostings::compact`] may seal shorter blocks.
    count: u8,
}

impl BlockMeta {
    /// Payload words occupied by this block in the arena.
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    fn words(&self) -> usize {
        words_for(self.width as usize, self.count as usize)
    }
}

/// Packed words needed for `count` deltas of `width` bits each.
fn words_for(width: usize, count: usize) -> usize {
    (width * count).div_ceil(32)
}

/// Bits needed to store `delta` (0 needs 0 bits under delta-1 coding).
fn bits_for(delta: u32) -> u8 {
    (32 - delta.leading_zeros()) as u8
}

/// An append-only compressed posting list: sealed delta-packed blocks plus an
/// uncompressed in-order tail. See the [module docs](self) for the layout.
///
/// The arena `data` holds every sealed block's packed words first, then the
/// raw tail ids — one allocation per list regardless of block count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompressedPostings {
    /// Packed sealed-block words, then raw tail ids.
    data: Vec<u32>,
    /// One skip entry per sealed block, maxima strictly ascending.
    blocks: Vec<BlockMeta>,
    /// Total ids stored (sealed + tail), dead ids included.
    len: u32,
    /// Arena index where the raw tail begins (= end of the packed region).
    tail_start: u32,
    /// Ids logically deleted by [`Table::retract_prefix`](crate::Table::retract_prefix)
    /// but still physically encoded. Retraction is prefix-only, so the dead
    /// ids are exactly the stored ids below the table's watermark; readers
    /// skip them by seeking to the watermark, and the list is rebuilt without
    /// them once the dead fraction crosses the lazy-deletion threshold.
    dead: u32,
}

impl CompressedPostings {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty list sized for about `ids` appends. Only the tail and
    /// packed words live in the arena, so the reservation assumes the typical
    /// post-seal footprint rather than `ids` raw words.
    pub fn with_capacity(ids: usize) -> Self {
        CompressedPostings {
            data: Vec::with_capacity(ids.min(BLOCK)),
            ..Self::default()
        }
    }

    /// Number of ids stored, dead ids included.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list holds no ids (dead or alive).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of ids logically deleted but still physically encoded.
    pub fn dead_len(&self) -> usize {
        self.dead as usize
    }

    /// Number of live (non-retracted) ids.
    pub fn live_len(&self) -> usize {
        (self.len - self.dead) as usize
    }

    /// Marks one stored id as dead. Retraction is prefix-only, so the caller
    /// (the table, while advancing its watermark) identifies the id by
    /// position in the stream, not by value — the list only counts.
    pub(crate) fn mark_dead(&mut self) {
        self.dead += 1;
        debug_assert!(self.dead <= self.len);
    }

    /// Whether the dead fraction has crossed the lazy-deletion threshold
    /// (half the stored ids) and the list should be rebuilt without them.
    pub(crate) fn should_rebuild(&self) -> bool {
        self.dead > 0 && 2 * self.dead >= self.len
    }

    /// Rebuilds the list from its ids `>= watermark`, dropping every dead id.
    /// Retraction is prefix-only, so the surviving ids are exactly those at
    /// or above the table's watermark; the rebuilt representation is a pure
    /// function of that suffix (fresh sealing cadence, empty tail history).
    pub(crate) fn rebuild_below(&mut self, watermark: TupleId) {
        let mut rebuilt = CompressedPostings::with_capacity(self.live_len());
        let mut cursor = self.cursor();
        if cursor.seek(watermark).is_some() {
            for id in cursor {
                rebuilt.push(id);
            }
        }
        *self = rebuilt;
    }

    /// Number of sealed blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of ids still in the uncompressed tail.
    pub fn tail_len(&self) -> usize {
        self.data.len() - self.tail_start as usize
    }

    /// The largest (= most recent) id, if any.
    pub fn last(&self) -> Option<TupleId> {
        self.tail()
            .last()
            .copied()
            .or_else(|| self.blocks.last().map(|b| b.max))
    }

    /// The raw uncompressed tail.
    fn tail(&self) -> &[TupleId] {
        &self.data[self.tail_start as usize..]
    }

    /// Base id the block at `index` is delta-chained to.
    fn base_of(&self, index: usize) -> TupleId {
        if index == 0 {
            0
        } else {
            self.blocks[index - 1].max + 1
        }
    }

    /// Appends one id, which must be strictly greater than every id already
    /// stored (tuple ids arrive in order). A full tail is sealed in place.
    pub fn push(&mut self, id: TupleId) {
        debug_assert!(
            self.last().is_none_or(|last| last < id),
            "posting ids must be strictly ascending: {:?} then {id}",
            self.last()
        );
        self.data.push(id);
        self.len += 1;
        if self.data.len() - self.tail_start as usize == BLOCK {
            self.seal_tail();
        }
    }

    /// Appends a strictly ascending run of ids (the batched counting-sort
    /// ingest path). Equivalent to a loop of [`CompressedPostings::push`] —
    /// and produces the identical representation, which the batched ≡ looped
    /// property tests rely on.
    pub fn extend_from_slice(&mut self, ids: &[TupleId]) {
        for &id in ids {
            self.push(id);
        }
    }

    /// Packs the whole tail into a sealed block. Only called with 1..=[`BLOCK`]
    /// tail ids.
    fn seal_tail(&mut self) {
        let start = self.tail_start as usize;
        let count = self.data.len() - start;
        debug_assert!((1..=BLOCK).contains(&count));
        let mut scratch = [0u32; BLOCK];
        scratch[..count].copy_from_slice(&self.data[start..]);
        let ids = &scratch[..count];
        let base = self.base_of(self.blocks.len());
        let (width, max) = delta_stats(ids, base);
        self.data.truncate(start);
        pack_deltas(ids, base, width, &mut self.data);
        self.blocks.push(BlockMeta {
            max,
            offset: start as u32,
            width,
            count: count as u8,
        });
        self.tail_start = self.data.len() as u32;
    }

    /// Seals a partial tail when (and only when) the packed form — payload
    /// words plus the 12-byte skip entry — is smaller than the raw tail.
    ///
    /// Appends keep the representation purely a function of the id sequence;
    /// compaction is an explicit bulk-load finisher (see
    /// [`Table::compact_postings`](crate::Table::compact_postings)), so
    /// calling it at different times may yield different (equally valid)
    /// layouts.
    pub fn compact(&mut self) {
        let count = self.tail_len();
        if count == 0 {
            return;
        }
        let base = self.base_of(self.blocks.len());
        let (width, _) = delta_stats(self.tail(), base);
        let packed = std::mem::size_of::<BlockMeta>() + 4 * words_for(width as usize, count);
        if packed < 4 * count {
            self.seal_tail();
        }
    }

    /// Heap bytes held by this list: the arena words plus the skip entries.
    /// (The map entry holding the list is accounted by the table.)
    pub fn approx_heap_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
            + self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }

    /// Heap bytes the same ids would occupy as a plain `Vec<TupleId>` — the
    /// pre-compression layout benchmarks compare against.
    pub fn uncompressed_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<TupleId>()
    }

    /// Iterates all ids in ascending order. The iterator knows its exact
    /// length.
    pub fn iter(&self) -> PostingsIter<'_> {
        PostingsIter {
            cursor: PostingsCursor::new(self),
            remaining: self.len(),
        }
    }

    /// Collects the ids into a plain vector (tests and diagnostics).
    pub fn to_vec(&self) -> Vec<TupleId> {
        self.iter().collect()
    }

    /// A galloping cursor positioned before the first id.
    pub fn cursor(&self) -> PostingsCursor<'_> {
        PostingsCursor::new(self)
    }

    /// Serializes the list's *native* representation — arena words, skip
    /// entries, length and tail split — for the snapshot codec in
    /// [`crate::wal`]. Serializing the representation rather than the ids
    /// matters: the sealed/tail split depends on when
    /// [`CompressedPostings::compact`] ran, so re-pushing the ids would not
    /// reproduce the pre-snapshot posting statistics.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        crate::wal::put_u32(out, self.len);
        crate::wal::put_u32(out, self.tail_start);
        crate::wal::put_u32(out, self.dead);
        crate::wal::put_u32(out, self.blocks.len() as u32);
        for meta in &self.blocks {
            // Copy the packed fields out before taking references.
            let (max, offset) = (meta.max, meta.offset);
            crate::wal::put_u32(out, max);
            crate::wal::put_u32(out, offset);
            out.push(meta.width);
            out.push(meta.count);
        }
        crate::wal::put_u32(out, self.data.len() as u32);
        for &word in &self.data {
            crate::wal::put_u32(out, word);
        }
    }

    /// Decodes a list serialized by [`CompressedPostings::encode_state`],
    /// re-checking the structural invariants (block tiling, counts, widths,
    /// ascending maxima, tail consistency) so a corrupted snapshot becomes a
    /// typed error instead of a later panic or a silently broken index.
    pub(crate) fn decode_state(cur: &mut crate::wal::ByteCursor<'_>) -> sitfact_core::Result<Self> {
        use sitfact_core::SitFactError;
        let corrupt = |detail: String| SitFactError::Parse(format!("posting snapshot: {detail}"));
        let len = cur.get_u32()?;
        let tail_start = cur.get_u32()?;
        let dead = cur.get_u32()?;
        if dead > len {
            return Err(corrupt(format!("{dead} dead ids out of {len} stored")));
        }
        let nblocks = cur.get_count(10, "posting block")?;
        let mut blocks = Vec::with_capacity(nblocks);
        let mut expected_offset = 0u32;
        let mut sealed_ids = 0usize;
        let mut prev_max: Option<TupleId> = None;
        for index in 0..nblocks {
            let max = cur.get_u32()?;
            let offset = cur.get_u32()?;
            let width = cur.get_u8()?;
            let count = cur.get_u8()?;
            if count == 0 || count as usize > BLOCK {
                return Err(corrupt(format!("block {index} claims {count} ids")));
            }
            if width > 32 {
                return Err(corrupt(format!("block {index} claims width {width}")));
            }
            if offset != expected_offset {
                return Err(corrupt(format!(
                    "block {index} starts at word {offset}, want {expected_offset}"
                )));
            }
            if prev_max.is_some_and(|p| p >= max) {
                return Err(corrupt(format!(
                    "block {index} max {max} does not ascend past {prev_max:?}"
                )));
            }
            prev_max = Some(max);
            expected_offset += words_for(width as usize, count as usize) as u32;
            sealed_ids += count as usize;
            blocks.push(BlockMeta {
                max,
                offset,
                width,
                count,
            });
        }
        if tail_start != expected_offset {
            return Err(corrupt(format!(
                "tail starts at word {tail_start}, want {expected_offset}"
            )));
        }
        let nwords = cur.get_count(4, "posting arena word")?;
        if (tail_start as usize) > nwords {
            return Err(corrupt(format!(
                "tail start {tail_start} beyond the {nwords}-word arena"
            )));
        }
        let mut data = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            data.push(cur.get_u32()?);
        }
        // The raw tail chains past the last sealed block, strictly ascending.
        let mut prev = prev_max;
        for (k, &id) in data[tail_start as usize..].iter().enumerate() {
            if prev.is_some_and(|p| p >= id) {
                return Err(corrupt(format!(
                    "tail position {k}: id {id} after {prev:?}"
                )));
            }
            prev = Some(id);
        }
        let tail_len = nwords - tail_start as usize;
        if len as usize != sealed_ids + tail_len {
            return Err(corrupt(format!(
                "len {len} != sealed {sealed_ids} + tail {tail_len}"
            )));
        }
        Ok(CompressedPostings {
            data,
            blocks,
            len,
            tail_start,
            dead,
        })
    }

    /// Decodes the sealed block at `index` into `out`; returns its id count.
    /// (The cursor decodes incrementally instead; this one-shot variant backs
    /// the deep audit's roundtrip check.)
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    fn decode_block(&self, index: usize, out: &mut [TupleId; BLOCK]) -> usize {
        let meta = self.blocks[index];
        let count = meta.count as usize;
        let width = meta.width as usize;
        let mut base = self.base_of(index);
        if width == 0 {
            // All deltas zero: a consecutive run starting at the base.
            for (k, slot) in out[..count].iter_mut().enumerate() {
                *slot = base + k as u32;
            }
            return count;
        }
        let words = &self.data[meta.offset as usize..];
        let mask = (1u64 << width) - 1;
        let mut acc = 0u64;
        let mut bits = 0usize;
        let mut word = 0usize;
        for slot in out[..count].iter_mut() {
            while bits < width {
                acc |= u64::from(words[word]) << bits;
                word += 1;
                bits += 32;
            }
            let id = base + (acc & mask) as u32;
            acc >>= width;
            bits -= width;
            *slot = id;
            base = id + 1;
        }
        count
    }

    /// Deep structural self-check; see [`sitfact_core::audit::Audit`].
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    pub fn audit(&self) -> std::result::Result<(), sitfact_core::AuditViolation> {
        sitfact_core::Audit::check(self)
    }
}

/// Max-delta width and final id of a strictly ascending run under delta-1
/// coding against `base`.
fn delta_stats(ids: &[TupleId], base: TupleId) -> (u8, TupleId) {
    debug_assert!(!ids.is_empty());
    let mut width = 0u8;
    let mut prev = base;
    for &id in ids {
        width = width.max(bits_for(id - prev));
        prev = id + 1;
    }
    (width, prev - 1)
}

/// Appends the delta-1 coded `ids` to `out`, LSB-first across 32-bit words.
fn pack_deltas(ids: &[TupleId], base: TupleId, width: u8, out: &mut Vec<u32>) {
    let width = width as usize;
    if width == 0 {
        return;
    }
    let mut acc = 0u64;
    let mut bits = 0usize;
    let mut prev = base;
    for &id in ids {
        acc |= u64::from(id - prev) << bits;
        bits += width;
        prev = id + 1;
        while bits >= 32 {
            out.push(acc as u32);
            acc >>= 32;
            bits -= 32;
        }
    }
    if bits > 0 {
        out.push(acc as u32);
    }
}

/// Sentinel for "no block decoded yet" in [`PostingsCursor`].
const NO_BLOCK: usize = usize::MAX;

/// A forward-only cursor over a [`CompressedPostings`] list supporting both
/// sequential reads ([`PostingsCursor::next`]) and galloping skips
/// ([`PostingsCursor::seek`]).
///
/// The cursor unpacks the current block *incrementally* into an inline
/// buffer: a seek stops at the first id `>= target` instead of materialising
/// all [`BLOCK`] ids, so a sparse driver galloping through a dense list pays
/// for the prefix it inspects, not the whole candidate block. Sequential
/// reads fill the rest of the block in one tight pass on first demand. The
/// hot intersection path never heap-allocates, and
/// [`PostingsCursor::blocks_decoded`] counts blocks touched — the work
/// measure behind the sub-linearity assertions.
#[derive(Debug)]
pub struct PostingsCursor<'a> {
    list: &'a CompressedPostings,
    /// Current sealed-block index; `== num_blocks` means the tail.
    block: usize,
    /// Position within the current block (or within the tail).
    pos: usize,
    /// Inline decode buffer for the block in `decoded_block`.
    decoded: [TupleId; BLOCK],
    /// Which block `decoded` holds a prefix of ([`NO_BLOCK`] if none yet).
    decoded_block: usize,
    /// Entries of `decoded` filled so far (`<= count`).
    valid: usize,
    /// Id count of the current block.
    count: usize,
    /// Streaming unpack state: bit accumulator, bits buffered, next arena
    /// word, delta base for the next id, and the block's width/mask.
    acc: u64,
    bits: usize,
    word: usize,
    next_base: TupleId,
    width: usize,
    mask: u64,
    /// Blocks touched (partially or fully decoded) so far.
    decodes: usize,
    /// Ids consumed via [`PostingsCursor::next`] (seeks skip uncounted, so
    /// `len - consumed` stays a valid upper bound on what remains).
    consumed: usize,
}

impl<'a> PostingsCursor<'a> {
    fn new(list: &'a CompressedPostings) -> Self {
        PostingsCursor {
            list,
            block: 0,
            pos: 0,
            decoded: [0; BLOCK],
            decoded_block: NO_BLOCK,
            valid: 0,
            count: 0,
            acc: 0,
            bits: 0,
            word: 0,
            next_base: 0,
            width: 0,
            mask: 0,
            decodes: 0,
            consumed: 0,
        }
    }

    /// Sealed blocks touched by the decoder so far (a seek that resolves in
    /// the raw tail decodes nothing).
    pub fn blocks_decoded(&self) -> usize {
        self.decodes
    }

    /// Upper bound on the ids the cursor can still yield.
    pub fn remaining_upper_bound(&self) -> usize {
        self.list.len() - self.consumed
    }

    /// Begins incremental decoding of `block`. Width-0 blocks (consecutive
    /// runs) are filled eagerly — that is a plain counted fill with no
    /// payload reads.
    fn start_block(&mut self, block: usize) {
        let meta = self.list.blocks[block];
        self.decoded_block = block;
        self.count = meta.count as usize;
        self.valid = 0;
        self.width = meta.width as usize;
        self.mask = (1u64 << self.width) - 1;
        self.acc = 0;
        self.bits = 0;
        self.word = meta.offset as usize;
        self.next_base = self.list.base_of(block);
        self.decodes += 1;
        if self.width == 0 {
            for (k, slot) in self.decoded[..self.count].iter_mut().enumerate() {
                *slot = self.next_base + k as u32;
            }
            self.valid = self.count;
        }
    }

    /// Unpacks ids of the current block until `valid >= upto`.
    fn decode_upto(&mut self, upto: usize) {
        debug_assert!(upto <= self.count);
        while self.valid < upto {
            if self.bits < self.width {
                self.acc |= u64::from(self.list.data[self.word]) << self.bits;
                self.word += 1;
                self.bits += 32;
            }
            let id = self.next_base + (self.acc & self.mask) as u32;
            self.acc >>= self.width;
            self.bits -= self.width;
            self.decoded[self.valid] = id;
            self.valid += 1;
            self.next_base = id + 1;
        }
    }

    /// Unpacks ids of the current block until the valid prefix extends past
    /// the cursor position *and* ends in an id `>= target` (the caller
    /// guarantees the block's max is), or the block is exhausted. Both
    /// conditions matter: an already-decoded id `>= target` that sits before
    /// the position has been consumed and cannot be the answer.
    /// Decoding proceeds in 32-id mini-batches: the fixed-bound inner loop
    /// stays tight while a hit in the block's first words still skips most of
    /// the unpacking.
    fn decode_until(&mut self, target: TupleId) {
        while self.valid < self.count
            && (self.valid <= self.pos || self.decoded[self.valid - 1] < target)
        {
            self.decode_upto((self.valid + 32).min(self.count));
        }
    }

    /// Positions the cursor at the first id `>= target` and returns it
    /// *without* consuming (a following [`PostingsCursor::next`] yields the
    /// same id). Never moves backwards: a target at or before the current
    /// position returns the current id.
    ///
    /// This is the gallop step: a binary search over the block maxima skips
    /// whole blocks, and only a prefix of the single candidate block is
    /// unpacked.
    pub fn seek(&mut self, target: TupleId) -> Option<TupleId> {
        let num_blocks = self.list.blocks.len();
        if self.block < num_blocks {
            if self.list.blocks[self.block].max < target {
                let skipped =
                    self.list.blocks[self.block + 1..].partition_point(|meta| meta.max < target);
                self.block += 1 + skipped;
                self.pos = 0;
            }
            if self.block < num_blocks {
                if self.decoded_block != self.block {
                    self.start_block(self.block);
                }
                // The block's max is >= target, so the decode stops at an id
                // >= target and the search cannot fall off the valid prefix.
                self.decode_until(target);
                let at = self.pos
                    + self.decoded[self.pos..self.valid].partition_point(|&id| id < target);
                self.pos = at;
                return Some(self.decoded[at]);
            }
        }
        let tail = self.list.tail();
        self.pos += tail[self.pos..].partition_point(|&id| id < target);
        tail.get(self.pos).copied()
    }
}

impl Iterator for PostingsCursor<'_> {
    type Item = TupleId;

    /// Returns the id at the cursor position and advances past it. On first
    /// demand within a block the remainder is unpacked in one pass, keeping
    /// sequential drains as tight as a full-block decode.
    fn next(&mut self) -> Option<TupleId> {
        if self.block < self.list.blocks.len() {
            if self.decoded_block != self.block {
                self.start_block(self.block);
            }
            if self.pos >= self.valid {
                self.decode_upto(self.count);
            }
            let id = self.decoded[self.pos];
            self.pos += 1;
            self.consumed += 1;
            if self.pos == self.count {
                self.block += 1;
                self.pos = 0;
            }
            Some(id)
        } else {
            let tail = self.list.tail();
            let id = *tail.get(self.pos)?;
            self.pos += 1;
            self.consumed += 1;
            Some(id)
        }
    }

    /// Seeks skip ids without counting them, so only the upper bound is
    /// known.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining_upper_bound()))
    }

    /// Internal iteration: drains block-wise over the decoded buffer, so
    /// whole-list consumers (`sum`, `for_each`, `fold`) pay a tight slice
    /// walk per block instead of the full cursor state machine per id.
    fn fold<B, F>(mut self, init: B, mut f: F) -> B
    where
        F: FnMut(B, TupleId) -> B,
    {
        let mut acc = init;
        let num_blocks = self.list.blocks.len();
        while self.block < num_blocks {
            if self.decoded_block != self.block {
                self.start_block(self.block);
            }
            self.decode_upto(self.count);
            for &id in &self.decoded[self.pos..self.count] {
                acc = f(acc, id);
            }
            self.block += 1;
            self.pos = 0;
        }
        for &id in &self.list.tail()[self.pos..] {
            acc = f(acc, id);
        }
        acc
    }
}

/// Exact-length iterator over a [`CompressedPostings`] list, produced by
/// [`CompressedPostings::iter`].
#[derive(Debug)]
pub struct PostingsIter<'a> {
    cursor: PostingsCursor<'a>,
    remaining: usize,
}

impl Iterator for PostingsIter<'_> {
    type Item = TupleId;

    fn next(&mut self) -> Option<TupleId> {
        let id = self.cursor.next()?;
        self.remaining -= 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }

    /// Delegates to the cursor's block-wise internal iteration.
    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, TupleId) -> B,
    {
        self.cursor.fold(init, &mut f)
    }
}

impl ExactSizeIterator for PostingsIter<'_> {}

/// Re-derives the compressed layout from first principles: block chaining,
/// skip-entry agreement, packing-width minimality, tail consistency and a
/// full decode-roundtrip ascent check.
#[cfg(any(test, debug_assertions, feature = "deep-audit"))]
impl sitfact_core::Audit for CompressedPostings {
    fn check(&self) -> std::result::Result<(), sitfact_core::AuditViolation> {
        use sitfact_core::AuditViolation;
        let fail = |invariant: &'static str, detail: String| {
            Err(AuditViolation::new("CompressedPostings", invariant, detail))
        };

        // Blocks tile the packed region contiguously from word 0.
        let mut expected_offset = 0usize;
        let mut sealed_ids = 0usize;
        for (index, &meta) in self.blocks.iter().enumerate() {
            let offset = meta.offset;
            if offset as usize != expected_offset {
                return fail(
                    "block-contiguous",
                    format!("block {index} starts at word {offset}, want {expected_offset}"),
                );
            }
            if meta.count == 0 || meta.count as usize > BLOCK {
                return fail(
                    "block-count",
                    format!("block {index} claims {} ids, want 1..={BLOCK}", meta.count),
                );
            }
            if meta.width > 32 {
                return fail(
                    "block-width",
                    format!("block {index} claims width {} > 32 bits", meta.width),
                );
            }
            expected_offset += meta.words();
            sealed_ids += meta.count as usize;
        }
        if self.tail_start as usize != expected_offset {
            return fail(
                "tail-start",
                format!(
                    "tail starts at word {}, want the packed region end {expected_offset}",
                    self.tail_start
                ),
            );
        }
        if self.tail_start as usize > self.data.len() {
            return fail(
                "tail-start",
                format!(
                    "tail start {} beyond the arena ({} words)",
                    self.tail_start,
                    self.data.len()
                ),
            );
        }
        if self.len() != sealed_ids + self.tail_len() {
            return fail(
                "length-consistent",
                format!(
                    "len {} != sealed {sealed_ids} + tail {}",
                    self.len(),
                    self.tail_len()
                ),
            );
        }
        if self.dead > self.len {
            return fail(
                "dead-bounded",
                format!("{} dead ids out of {} stored", self.dead, self.len),
            );
        }

        // Decode roundtrip: every block must yield its claimed count of
        // strictly ascending ids, agree with its skip entry and chain past
        // the previous block; the recorded width must be minimal.
        let mut buffer = [0u32; BLOCK];
        let mut prev: Option<TupleId> = None;
        for (index, &meta) in self.blocks.iter().enumerate() {
            let count = self.decode_block(index, &mut buffer);
            let ids = &buffer[..count];
            for (k, &id) in ids.iter().enumerate() {
                if prev.is_some_and(|p| p >= id) {
                    return fail(
                        "ids-ascending",
                        format!("block {index} position {k}: id {id} after {:?}", prev),
                    );
                }
                prev = Some(id);
            }
            let max = meta.max;
            if ids.last() != Some(&max) {
                return fail(
                    "skip-entry-max",
                    format!(
                        "block {index} decodes to last id {:?}, skip entry says {max}",
                        ids.last()
                    ),
                );
            }
            let (minimal_width, _) = delta_stats(ids, self.base_of(index));
            if meta.width != minimal_width {
                return fail(
                    "width-minimal",
                    format!(
                        "block {index} packed at width {}, minimal is {minimal_width}",
                        meta.width
                    ),
                );
            }
        }
        for (k, &id) in self.tail().iter().enumerate() {
            if prev.is_some_and(|p| p >= id) {
                return fail(
                    "ids-ascending",
                    format!("tail position {k}: id {id} after {:?}", prev),
                );
            }
            prev = Some(id);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_core::Audit;

    fn filled(ids: impl IntoIterator<Item = TupleId>) -> CompressedPostings {
        let mut list = CompressedPostings::new();
        for id in ids {
            list.push(id);
        }
        list
    }

    #[test]
    fn block_meta_is_ten_bytes() {
        // The ≥4× headline depends on the skip entry staying this small.
        assert_eq!(std::mem::size_of::<BlockMeta>(), 10);
    }

    #[test]
    fn empty_list_is_empty() {
        let list = CompressedPostings::new();
        assert_eq!(list.len(), 0);
        assert!(list.is_empty());
        assert_eq!(list.last(), None);
        assert_eq!(list.to_vec(), Vec::<TupleId>::new());
        assert_eq!(list.cursor().remaining_upper_bound(), 0);
        assert_eq!(list.approx_heap_bytes(), 0);
        list.check().unwrap();
    }

    #[test]
    fn roundtrip_across_gap_widths() {
        // Gap patterns chosen to hit width 0, small widths and width 32.
        let cases: Vec<Vec<TupleId>> = vec![
            (0..1).collect(),
            (0..BLOCK as u32).collect(),     // exactly one sealed block
            (0..BLOCK as u32 + 1).collect(), // block + 1-id tail
            (0..5 * BLOCK as u32 + 17).collect(), // width-0 chain
            (0..400).map(|k| k * 3).collect(), // constant gap 3
            (0..400).map(|k| k * k).collect(), // growing gaps
            vec![0, u32::MAX - 1],           // near-maximal gap
            (0..300).map(|k| k * 10_000_019).collect(), // wide deltas
        ];
        for ids in cases {
            let list = filled(ids.iter().copied());
            assert_eq!(list.len(), ids.len());
            assert_eq!(list.to_vec(), ids, "roundtrip of {} ids", ids.len());
            assert_eq!(list.last(), ids.last().copied());
            list.check().unwrap();
        }
    }

    #[test]
    fn extend_matches_push_loop_exactly() {
        let ids: Vec<TupleId> = (0..700).map(|k| k * 7 + k % 5).collect();
        let looped = filled(ids.iter().copied());
        let mut batched = CompressedPostings::new();
        batched.extend_from_slice(&ids[..300]);
        batched.extend_from_slice(&ids[300..]);
        // Same representation, not merely the same ids.
        assert_eq!(batched, looped);
        batched.check().unwrap();
    }

    #[test]
    fn consecutive_runs_pack_to_zero_width() {
        let list = filled(0..4 * BLOCK as u32);
        assert_eq!(list.num_blocks(), 4);
        assert_eq!(list.tail_len(), 0);
        // No payload words at all: the arena is empty, only skip entries.
        assert_eq!(
            list.approx_heap_bytes(),
            4 * std::mem::size_of::<BlockMeta>()
        );
        list.check().unwrap();
    }

    #[test]
    fn compact_seals_only_when_it_saves_bytes() {
        // 100 consecutive ids: packed form is one 12-byte entry vs 400 raw
        // bytes — compact seals.
        let mut dense = filled(0..100);
        let raw = dense.approx_heap_bytes();
        dense.compact();
        assert!(dense.approx_heap_bytes() < raw);
        assert_eq!(dense.num_blocks(), 1);
        assert_eq!(dense.tail_len(), 0);
        assert!(dense.iter().eq(0..100));
        dense.check().unwrap();

        // Two huge-gap ids: 12 + 8 packed bytes ≥ 8 raw bytes — compact must
        // leave the tail alone.
        let mut sparse = filled([7, u32::MAX - 1]);
        sparse.compact();
        assert_eq!(sparse.num_blocks(), 0);
        assert_eq!(sparse.tail_len(), 2);
        sparse.check().unwrap();

        // Appending after a partial seal keeps working.
        let mut resumed = filled(0..100);
        resumed.compact();
        for id in 200..500 {
            resumed.push(id);
        }
        assert!(resumed.iter().eq((0..100).chain(200..500)));
        resumed.check().unwrap();
    }

    #[test]
    fn cursor_next_streams_all_ids() {
        let ids: Vec<TupleId> = (0..1000).map(|k| k * 11 % 7 + k * 13).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let list = filled(sorted.iter().copied());
        let mut cursor = list.cursor();
        let mut streamed = Vec::new();
        for id in cursor.by_ref() {
            streamed.push(id);
        }
        assert_eq!(streamed, sorted);
        assert_eq!(cursor.remaining_upper_bound(), 0);
    }

    #[test]
    fn cursor_seek_finds_first_geq_and_is_monotone() {
        let ids: Vec<TupleId> = (0..600).map(|k| k * 5).collect();
        let list = filled(ids.iter().copied());
        let mut cursor = list.cursor();
        // Each target lies past the id consumed by the previous round, so the
        // forward-only cursor agrees with the whole-list expectation.
        for target in [0, 7, 23, 1399, 1402, 2995] {
            let want = ids.iter().copied().find(|&id| id >= target);
            assert_eq!(cursor.seek(target), want, "seek({target})");
            // Seek peeks: next() must yield the same id.
            assert_eq!(cursor.next(), want, "next after seek({target})");
        }
        // Past the end: None, and the cursor stays exhausted.
        assert_eq!(cursor.seek(3000), None);
        assert_eq!(cursor.next(), None);
    }

    #[test]
    fn cursor_seek_never_moves_backwards() {
        let list = filled((0..500).map(|k| k * 2));
        let mut cursor = list.cursor();
        assert_eq!(cursor.seek(600), Some(600));
        // An earlier target must not rewind.
        assert_eq!(cursor.seek(10), Some(600));
        assert_eq!(cursor.next(), Some(600));
    }

    #[test]
    fn seek_decodes_sublinearly() {
        // 32 sealed blocks; a single far seek must decode exactly one.
        let list = filled((0..32 * BLOCK as u32).map(|k| k * 3));
        assert_eq!(list.num_blocks(), 32);
        let mut cursor = list.cursor();
        cursor.seek(3 * (30 * BLOCK as u32));
        assert_eq!(cursor.blocks_decoded(), 1);
        // A seek that resolves in the tail decodes nothing.
        let mut tailed = filled((0..BLOCK as u32 + 50).map(|k| k * 2));
        let mut cursor = tailed.cursor();
        assert_eq!(
            cursor.seek(2 * (BLOCK as u32 + 10)),
            Some(2 * (BLOCK as u32 + 10))
        );
        assert_eq!(cursor.blocks_decoded(), 0);
        tailed.compact();
        tailed.check().unwrap();
    }

    #[test]
    fn iterator_is_exact_size() {
        let list = filled(0..300);
        let mut iter = list.iter();
        assert_eq!(iter.len(), 300);
        iter.next();
        assert_eq!(iter.len(), 299);
        assert_eq!(iter.size_hint(), (299, Some(299)));
    }

    #[test]
    fn audit_catches_corrupted_skip_entries() {
        let mut list = filled(0..300);
        list.check().unwrap();
        list.blocks[0].max += 1;
        let violation = list.check().expect_err("corrupt skip entry");
        assert!(violation.explain().contains("CompressedPostings"));
    }

    #[test]
    fn audit_catches_inconsistent_length() {
        let mut list = filled(0..300);
        list.len += 1;
        assert!(list.check().is_err());
    }

    #[test]
    fn lazy_deletion_counts_and_rebuilds() {
        let mut list = filled(0..300);
        for _ in 0..100 {
            list.mark_dead();
        }
        assert_eq!(
            (list.len(), list.dead_len(), list.live_len()),
            (300, 100, 200)
        );
        assert!(!list.should_rebuild());
        for _ in 0..50 {
            list.mark_dead();
        }
        assert!(list.should_rebuild());
        list.rebuild_below(150);
        assert_eq!(
            (list.len(), list.dead_len(), list.live_len()),
            (150, 0, 150)
        );
        assert!(list.iter().eq(150..300));
        list.check().unwrap();
        // Appends continue past a rebuild.
        list.push(400);
        assert_eq!(list.live_len(), 151);
        // A watermark past the end empties the list.
        list.rebuild_below(1000);
        assert!(list.is_empty());
        list.check().unwrap();
    }

    #[test]
    fn heap_bytes_track_the_arena() {
        // Below one block: identical to the raw Vec data footprint.
        let list = filled(0..100);
        assert_eq!(list.approx_heap_bytes(), 100 * 4);
        assert_eq!(list.uncompressed_bytes(), 100 * 4);
        // 300 consecutive ids: two width-0 blocks (20 bytes) + 44 raw tail
        // ids (176 bytes).
        let list = filled(0..300);
        assert_eq!(list.approx_heap_bytes(), 2 * 10 + 44 * 4);
        assert_eq!(list.uncompressed_bytes(), 300 * 4);
    }
}
