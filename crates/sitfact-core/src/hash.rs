//! A fast, non-cryptographic hasher for small integer-ish keys.
//!
//! The discovery algorithms key hash maps by constraint keys (short arrays of
//! `u32`) and `(constraint, subspace)` pairs, millions of times per tuple
//! stream. The standard library's SipHash is collision-resistant but slow for
//! such keys; this module provides an FxHash-style multiply-xor hasher (the
//! same family rustc uses) implemented locally so the workspace does not need
//! an extra dependency.
//!
//! HashDoS resistance is irrelevant here: keys are derived from
//! dictionary-encoded attribute values under our own control, never from
//! untrusted network input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (a large odd constant close to 2^64 / φ).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-xor hasher in the FxHash family.
///
/// Each ingested word is rotated into the running state and multiplied by a
/// fixed odd constant. Quality is sufficient for power-of-two-sized tables
/// keyed by low-entropy integers, and throughput is far higher than SipHash.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`]. Drop-in replacement for
/// `std::collections::HashMap` in hot paths.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(&42u32), hash_one(&42u32));
        assert_eq!(hash_one(&"abc"), hash_one(&"abc"));
        assert_eq!(hash_one(&vec![1u32, 2, 3]), hash_one(&vec![1u32, 2, 3]));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&[1u32, 2]), hash_one(&[2u32, 1]));
        assert_ne!(hash_one(&"ab"), hash_one(&"ab\0"));
    }

    #[test]
    fn distinguishes_partial_words() {
        // Byte streams shorter than a word must still mix in their length.
        assert_ne!(hash_one(&b"a".to_vec()), hash_one(&b"a\0".to_vec()));
    }

    #[test]
    fn usable_as_map() {
        let mut map: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert(vec![i, i * 2], i as usize);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&vec![10, 20]), Some(&10));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(7);
        assert!(set.contains(&7));
    }

    #[test]
    fn collision_rate_is_reasonable() {
        // Hash 10k small composite keys and ensure buckets spread out.
        let mut seen = FxHashSet::default();
        for a in 0..100u32 {
            for b in 0..100u32 {
                seen.insert(hash_one(&(a, b)));
            }
        }
        // Allow a tiny number of collisions but not systematic ones.
        assert!(seen.len() > 9_950, "too many collisions: {}", seen.len());
    }
}
