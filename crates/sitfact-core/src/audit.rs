//! Deep structural invariant checking.
//!
//! The workspace's property tests prove *behavioural* equivalences (indexed ≡
//! scan, batched ≡ sequential, sharded ≡ unsharded, served ≡ in-process), but
//! those proofs silently rely on *structural* invariants — sorted posting
//! lists, stride-consistent columns, canonical report order. The [`Audit`]
//! trait is the contract for checking those invariants directly: every
//! auditable structure re-derives its redundant state from first principles
//! and compares, returning a self-describing [`AuditViolation`] on the first
//! mismatch.
//!
//! Implementations live next to the structures they check (they need private
//! field access) behind `cfg(any(test, debug_assertions, feature =
//! "deep-audit"))`, so release builds compile them out unless the
//! `deep-audit` feature is enabled. Property tests end with a deep
//! `audit()` call; the `audit_storm` binary in `sitfact-bench` hammers the
//! validators with randomized workloads.

use std::fmt;

/// A violated structural invariant, with enough context to debug it.
///
/// The three fields answer *what* broke (`structure`), *which rule* it broke
/// (`invariant`) and *how* (`detail` — concrete indexes and values, so the
/// failure is actionable without re-running under a debugger).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// The audited structure, e.g. `"Table"` or `"ShardedMonitor"`.
    pub structure: &'static str,
    /// Short name of the violated invariant, e.g. `"posting-list-sorted"`.
    pub invariant: &'static str,
    /// Concrete evidence: which index, which value, what was expected.
    pub detail: String,
}

impl AuditViolation {
    /// Builds a violation record.
    pub fn new(
        structure: &'static str,
        invariant: &'static str,
        detail: impl Into<String>,
    ) -> Self {
        AuditViolation {
            structure,
            invariant,
            detail: detail.into(),
        }
    }

    /// A one-line human-readable explanation of the violation.
    pub fn explain(&self) -> String {
        format!(
            "{} violated `{}`: {}",
            self.structure, self.invariant, self.detail
        )
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

impl std::error::Error for AuditViolation {}

/// Deep structural self-check.
///
/// `check` must be *redundant*: it re-derives every piece of denormalized
/// state (counters, indexes, cached orderings) from the primary data and
/// compares, so any drift introduced by an in-place mutation bug is caught
/// at the point of corruption rather than at the next wrong answer.
///
/// # Examples
///
/// ```
/// use sitfact_core::audit::{Audit, AuditViolation};
///
/// /// A counter that redundantly caches the sum of its samples.
/// struct Cached {
///     samples: Vec<u64>,
///     cached_sum: u64,
/// }
///
/// impl Audit for Cached {
///     fn check(&self) -> Result<(), AuditViolation> {
///         let truth: u64 = self.samples.iter().sum();
///         if truth != self.cached_sum {
///             return Err(AuditViolation::new(
///                 "Cached",
///                 "sum-consistent",
///                 format!("cached {} but samples sum to {truth}", self.cached_sum),
///             ));
///         }
///         Ok(())
///     }
/// }
///
/// let good = Cached { samples: vec![1, 2, 3], cached_sum: 6 };
/// assert!(good.check().is_ok());
///
/// let bad = Cached { samples: vec![1, 2, 3], cached_sum: 7 };
/// let violation = bad.check().unwrap_err();
/// assert_eq!(violation.invariant, "sum-consistent");
/// assert!(violation.explain().contains("samples sum to 6"));
/// ```
pub trait Audit {
    /// Checks every structural invariant, returning the first violation.
    fn check(&self) -> Result<(), AuditViolation>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_names_structure_invariant_and_detail() {
        let v = AuditViolation::new("Table", "column-stride", "dims.len() = 7, want 8");
        assert_eq!(
            v.explain(),
            "Table violated `column-stride`: dims.len() = 7, want 8"
        );
        assert_eq!(v.to_string(), v.explain());
    }
}
