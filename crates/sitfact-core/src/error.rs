//! Error type shared across the workspace.

use std::fmt;

/// Convenient result alias used throughout the `sitfact` crates.
pub type Result<T> = std::result::Result<T, SitFactError>;

/// Errors produced while building schemas, ingesting tuples or running the
/// discovery algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SitFactError {
    /// A schema was declared with no dimension or no measure attributes, with
    /// duplicate attribute names, or with more attributes than the bitmask
    /// representations support.
    InvalidSchema(String),
    /// A tuple's arity or value domain does not match the schema it is being
    /// appended under (wrong number of dimensions/measures, NaN measure, …).
    InvalidTuple(String),
    /// A constraint refers to an attribute or value that does not exist.
    InvalidConstraint(String),
    /// A measure subspace refers to measure indexes outside the schema.
    InvalidSubspace(String),
    /// A configuration is invalid: discovery caps (`d̂`, `m̂`) inconsistent
    /// with the schema, an unroutable anchor, a NaN/negative prominence
    /// threshold, a zero retention cap, …
    InvalidConfig(String),
    /// The file-backed skyline store hit an I/O problem.
    Io(String),
    /// Input data (CSV, …) could not be parsed.
    Parse(String),
}

impl fmt::Display for SitFactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SitFactError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            SitFactError::InvalidTuple(msg) => write!(f, "invalid tuple: {msg}"),
            SitFactError::InvalidConstraint(msg) => write!(f, "invalid constraint: {msg}"),
            SitFactError::InvalidSubspace(msg) => write!(f, "invalid measure subspace: {msg}"),
            SitFactError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            SitFactError::Io(msg) => write!(f, "I/O error: {msg}"),
            SitFactError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SitFactError {}

impl From<std::io::Error> for SitFactError {
    fn from(err: std::io::Error) -> Self {
        SitFactError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let err = SitFactError::InvalidSchema("no measures".into());
        assert_eq!(err.to_string(), "invalid schema: no measures");
        let err = SitFactError::Io("disk full".into());
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: SitFactError = io.into();
        assert!(matches!(err, SitFactError::Io(_)));
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            SitFactError::Parse("x".into()),
            SitFactError::Parse("x".into())
        );
        assert_ne!(
            SitFactError::Parse("x".into()),
            SitFactError::Io("x".into())
        );
    }
}
