//! The dominance relation of skyline analysis (Definition 2) and the
//! subspace-sharing partition of Proposition 4.

use crate::subspace::SubspaceMask;
use crate::tuple::TupleView;
use crate::value::Direction;

/// Outcome of comparing two tuples in a measure subspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DominanceOrdering {
    /// The left tuple dominates the right one.
    Dominates,
    /// The right tuple dominates the left one.
    DominatedBy,
    /// The tuples have identical values on every attribute of the subspace.
    Equal,
    /// Neither tuple dominates the other (each is strictly better somewhere).
    Incomparable,
}

/// Three-way partition of the full measure space with respect to two tuples
/// `t` (left) and `t'` (right): the attributes where `t` is better, where `t'`
/// is better, and where they tie (Proposition 4 of the paper).
///
/// One partition — computed from a single full-space comparison — answers the
/// dominance question for *every* measure subspace:
/// `t ≺_M t'` iff `M ∩ worse ≠ ∅` and `M ∩ better = ∅`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DominancePartition {
    /// Attributes on which the left tuple is strictly better (`M_>`).
    pub better: SubspaceMask,
    /// Attributes on which the left tuple is strictly worse (`M_<`).
    pub worse: SubspaceMask,
    /// Attributes on which both tuples are equal (`M_=`).
    pub equal: SubspaceMask,
}

impl DominancePartition {
    /// Computes the partition of `left` versus `right` over all measures,
    /// honouring the per-attribute preference directions. Accepts any
    /// [`TupleView`] — owned tuples and borrowed [`TupleRef`](crate::TupleRef)
    /// views alike.
    pub fn compute(left: impl TupleView, right: impl TupleView, directions: &[Direction]) -> Self {
        debug_assert_eq!(left.num_measures(), right.num_measures());
        debug_assert_eq!(left.num_measures(), directions.len());
        let mut better = 0u32;
        let mut worse = 0u32;
        let mut equal = 0u32;
        for (i, dir) in directions.iter().enumerate() {
            let a = left.measure(i);
            let b = right.measure(i);
            if a == b {
                equal |= 1 << i;
            } else if dir.better(a, b) {
                better |= 1 << i;
            } else {
                worse |= 1 << i;
            }
        }
        DominancePartition {
            better: SubspaceMask(better),
            worse: SubspaceMask(worse),
            equal: SubspaceMask(equal),
        }
    }

    /// Whether the left tuple dominates the right tuple in subspace `m`
    /// (Proposition 4, stated from the dominator's perspective).
    #[inline]
    pub fn left_dominates_in(&self, m: SubspaceMask) -> bool {
        !m.intersect(self.better).is_empty() && m.intersect(self.worse).is_empty()
    }

    /// Whether the left tuple is dominated by the right tuple in subspace `m`.
    #[inline]
    pub fn left_dominated_in(&self, m: SubspaceMask) -> bool {
        !m.intersect(self.worse).is_empty() && m.intersect(self.better).is_empty()
    }

    /// Whether the two tuples are equal on every attribute of `m`.
    #[inline]
    pub fn equal_in(&self, m: SubspaceMask) -> bool {
        m.intersect(self.better).is_empty() && m.intersect(self.worse).is_empty()
    }

    /// Classifies the relation of the left tuple to the right tuple in `m`.
    pub fn ordering_in(&self, m: SubspaceMask) -> DominanceOrdering {
        let has_better = !m.intersect(self.better).is_empty();
        let has_worse = !m.intersect(self.worse).is_empty();
        match (has_better, has_worse) {
            (true, false) => DominanceOrdering::Dominates,
            (false, true) => DominanceOrdering::DominatedBy,
            (false, false) => DominanceOrdering::Equal,
            (true, true) => DominanceOrdering::Incomparable,
        }
    }
}

/// Returns `true` iff `left` dominates `right` in measure subspace `m`:
/// better-or-equal everywhere in `m` and strictly better somewhere in `m`.
pub fn dominates(
    left: impl TupleView,
    right: impl TupleView,
    m: SubspaceMask,
    directions: &[Direction],
) -> bool {
    let mut strictly_better = false;
    for i in m.indices() {
        let a = left.measure(i);
        let b = right.measure(i);
        if a == b {
            continue;
        }
        if directions[i].better(a, b) {
            strictly_better = true;
        } else {
            return false;
        }
    }
    strictly_better
}

/// Classifies the relation of `left` to `right` in subspace `m` without
/// computing a full partition. Useful for one-off comparisons.
pub fn compare(
    left: impl TupleView,
    right: impl TupleView,
    m: SubspaceMask,
    directions: &[Direction],
) -> DominanceOrdering {
    let mut better = false;
    let mut worse = false;
    for i in m.indices() {
        let a = left.measure(i);
        let b = right.measure(i);
        if a == b {
            continue;
        }
        if directions[i].better(a, b) {
            better = true;
        } else {
            worse = true;
        }
        if better && worse {
            return DominanceOrdering::Incomparable;
        }
    }
    match (better, worse) {
        (true, false) => DominanceOrdering::Dominates,
        (false, true) => DominanceOrdering::DominatedBy,
        (false, false) => DominanceOrdering::Equal,
        (true, true) => unreachable!("early return above"),
    }
}

/// Computes the skyline of `tuples` in subspace `m` by pairwise comparison.
///
/// This is the reference implementation used by tests and by the brute-force
/// baseline; it is O(n²) and deliberately simple. Works over any iterator of
/// `(id, view)` pairs — `&Tuple` references and zero-copy
/// [`TupleRef`](crate::TupleRef) views from the columnar table alike.
pub fn skyline_of<T, I>(
    tuples: I,
    m: SubspaceMask,
    directions: &[Direction],
) -> Vec<(crate::TupleId, T)>
where
    T: TupleView + Copy,
    I: IntoIterator<Item = (crate::TupleId, T)>,
{
    let all: Vec<(crate::TupleId, T)> = tuples.into_iter().collect();
    all.iter()
        .filter(|(_, t)| {
            !all.iter()
                .any(|(_, other)| dominates(other, t, m, directions))
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tuple;

    const HIGHER: [Direction; 3] = [
        Direction::HigherIsBetter,
        Direction::HigherIsBetter,
        Direction::HigherIsBetter,
    ];

    fn t(measures: &[f64]) -> Tuple {
        Tuple::new(vec![0], measures.to_vec())
    }

    #[test]
    fn basic_domination() {
        let a = t(&[3.0, 3.0, 3.0]);
        let b = t(&[2.0, 3.0, 1.0]);
        let full = SubspaceMask::full(3);
        assert!(dominates(&a, &b, full, &HIGHER));
        assert!(!dominates(&b, &a, full, &HIGHER));
    }

    #[test]
    fn equal_tuples_do_not_dominate() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[1.0, 2.0, 3.0]);
        let full = SubspaceMask::full(3);
        assert!(!dominates(&a, &b, full, &HIGHER));
        assert!(!dominates(&b, &a, full, &HIGHER));
        assert_eq!(compare(&a, &b, full, &HIGHER), DominanceOrdering::Equal);
    }

    #[test]
    fn incomparable_tuples() {
        let a = t(&[3.0, 1.0, 2.0]);
        let b = t(&[1.0, 3.0, 2.0]);
        let full = SubspaceMask::full(3);
        assert!(!dominates(&a, &b, full, &HIGHER));
        assert!(!dominates(&b, &a, full, &HIGHER));
        assert_eq!(
            compare(&a, &b, full, &HIGHER),
            DominanceOrdering::Incomparable
        );
    }

    #[test]
    fn domination_respects_subspace() {
        let a = t(&[3.0, 1.0, 5.0]);
        let b = t(&[2.0, 4.0, 5.0]);
        // In {m0} a dominates; in {m1} b dominates; in {m2} they tie.
        assert!(dominates(&a, &b, SubspaceMask::singleton(0), &HIGHER));
        assert!(dominates(&b, &a, SubspaceMask::singleton(1), &HIGHER));
        assert!(!dominates(&a, &b, SubspaceMask::singleton(2), &HIGHER));
        // In {m0, m2} a dominates (better on m0, equal on m2).
        assert!(dominates(
            &a,
            &b,
            SubspaceMask::from_indices([0, 2]),
            &HIGHER
        ));
    }

    #[test]
    fn direction_is_honoured() {
        let dirs = [Direction::HigherIsBetter, Direction::LowerIsBetter];
        let a = Tuple::new(vec![], vec![10.0, 2.0]); // more points, fewer fouls
        let b = Tuple::new(vec![], vec![8.0, 5.0]);
        let full = SubspaceMask::full(2);
        assert!(dominates(&a, &b, full, &dirs));
        assert!(!dominates(&b, &a, full, &dirs));
    }

    #[test]
    fn partition_matches_paper_example() {
        // Example 10 of the paper: t5 = (11, 15) vs t2 = (15, 10):
        // M_> = {m2}, M_< = {m1}, M_= = {}.
        let dirs = [Direction::HigherIsBetter, Direction::HigherIsBetter];
        let t5 = Tuple::new(vec![], vec![11.0, 15.0]);
        let t2 = Tuple::new(vec![], vec![15.0, 10.0]);
        let p = DominancePartition::compute(&t5, &t2, &dirs);
        assert_eq!(p.better, SubspaceMask(0b10));
        assert_eq!(p.worse, SubspaceMask(0b01));
        assert_eq!(p.equal, SubspaceMask(0));
        // t5 is dominated by t2 in {m1} but not in {m2} nor the full space.
        assert!(p.left_dominated_in(SubspaceMask(0b01)));
        assert!(!p.left_dominated_in(SubspaceMask(0b10)));
        assert!(!p.left_dominated_in(SubspaceMask(0b11)));
        assert!(p.left_dominates_in(SubspaceMask(0b10)));
    }

    #[test]
    fn partition_agrees_with_direct_dominance() {
        // Cross-check Proposition 4 against the direct definition on a grid of
        // value combinations and subspaces.
        let dirs = [
            Direction::HigherIsBetter,
            Direction::LowerIsBetter,
            Direction::HigherIsBetter,
        ];
        let values = [0.0, 1.0, 2.0];
        let mut tuples = Vec::new();
        for &a in &values {
            for &b in &values {
                for &c in &values {
                    tuples.push(Tuple::new(vec![], vec![a, b, c]));
                }
            }
        }
        for x in &tuples {
            for y in &tuples {
                let p = DominancePartition::compute(x, y, &dirs);
                for m in SubspaceMask::enumerate(3, 3) {
                    assert_eq!(
                        p.left_dominates_in(m),
                        dominates(x, y, m, &dirs),
                        "mismatch for {:?} vs {:?} in {:?}",
                        x,
                        y,
                        m
                    );
                    assert_eq!(
                        p.left_dominated_in(m),
                        dominates(y, x, m, &dirs),
                        "mismatch (dominated) for {:?} vs {:?} in {:?}",
                        x,
                        y,
                        m
                    );
                    assert_eq!(p.ordering_in(m) == DominanceOrdering::Equal, p.equal_in(m));
                }
            }
        }
    }

    #[test]
    fn skyline_of_reference() {
        let dirs = [Direction::HigherIsBetter, Direction::HigherIsBetter];
        let tuples = [
            Tuple::new(vec![], vec![10.0, 15.0]),
            Tuple::new(vec![], vec![15.0, 10.0]),
            Tuple::new(vec![], vec![17.0, 17.0]),
            Tuple::new(vec![], vec![20.0, 20.0]),
            Tuple::new(vec![], vec![11.0, 15.0]),
        ];
        let ids: Vec<(u32, &Tuple)> = tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u32, t))
            .collect();
        let sky = skyline_of(ids, SubspaceMask::full(2), &dirs);
        // Only t4 = (20, 20) is undominated (running example, Example 3).
        assert_eq!(sky.len(), 1);
        assert_eq!(sky[0].0, 3);
    }

    #[test]
    fn ordering_in_all_cases() {
        let dirs = [Direction::HigherIsBetter, Direction::HigherIsBetter];
        let a = Tuple::new(vec![], vec![2.0, 1.0]);
        let b = Tuple::new(vec![], vec![1.0, 2.0]);
        let p = DominancePartition::compute(&a, &b, &dirs);
        assert_eq!(
            p.ordering_in(SubspaceMask(0b01)),
            DominanceOrdering::Dominates
        );
        assert_eq!(
            p.ordering_in(SubspaceMask(0b10)),
            DominanceOrdering::DominatedBy
        );
        assert_eq!(
            p.ordering_in(SubspaceMask(0b11)),
            DominanceOrdering::Incomparable
        );
        let p_self = DominancePartition::compute(&a, &a, &dirs);
        assert_eq!(
            p_self.ordering_in(SubspaceMask(0b11)),
            DominanceOrdering::Equal
        );
    }
}
