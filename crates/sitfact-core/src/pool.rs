//! A small vendored worker thread-pool.
//!
//! The build environment has no crates.io access, so instead of `rayon` or
//! `threadpool` this module implements the minimal plumbing the workspace
//! needs to fan a batched window out across
//! [`ShardedMonitor`](https://docs.rs/sitfact-prominence) shards: a fixed set
//! of worker threads fed through an [`mpsc`](std::sync::mpsc) channel, plus a
//! fan-out/fan-in helper ([`ThreadPool::run_all`]) that preserves submission
//! order and re-raises worker panics on the caller's thread.
//!
//! Two properties are load-bearing for the sharded ingest path and are pinned
//! by the unit tests below:
//!
//! * **Panic propagation.** A task that panics does not kill its worker (the
//!   payload is caught with [`std::panic::catch_unwind`] and carried back over
//!   the result channel); [`ThreadPool::run_all`] resumes the unwind on the
//!   submitting thread with the original payload, so a `should_panic` test or
//!   an outer `catch_unwind` observes exactly the panic the task raised.
//! * **Drop drains.** Dropping the pool closes the job channel and joins every
//!   worker, so all submitted work finishes (or finishes panicking) before
//!   `drop` returns — no task is ever abandoned mid-flight.
//!
//! Ownership transfer instead of scoped borrows: tasks are `'static` and move
//! their state in and out (the sharded monitor moves each shard into its task
//! and receives it back in the result), which keeps the pool free of `unsafe`
//! lifetime laundering — this crate is `#![forbid(unsafe_code)]`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads consuming jobs from a shared queue.
///
/// ```
/// use sitfact_core::pool::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.run_all(
///     (0u64..8)
///         .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>)
///         .collect(),
/// );
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug)]
pub struct ThreadPool {
    workers: Vec<JoinHandle<()>>,
    sender: Option<Sender<Job>>,
    caught_panics: Arc<AtomicUsize>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let caught_panics = Arc::new(AtomicUsize::new(0));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let caught = Arc::clone(&caught_panics);
                std::thread::Builder::new()
                    .name(format!("sitfact-pool-{i}"))
                    .spawn(move || worker_loop(&receiver, &caught))
                    .expect("spawn pool worker") // audit: allow(no-panic): OS thread-spawn failure at pool construction is unrecoverable
            })
            .collect();
        ThreadPool {
            workers,
            sender: Some(sender),
            caught_panics,
        }
    }

    /// A pool sized to the machine: one worker per available hardware thread.
    pub fn for_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::new(threads)
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Number of task panics the pool has caught so far (each was either
    /// re-raised by [`ThreadPool::run_all`] or swallowed by a fire-and-forget
    /// [`ThreadPool::execute`]).
    pub fn caught_panics(&self) -> usize {
        self.caught_panics.load(Ordering::SeqCst)
    }

    /// Enqueues a fire-and-forget job. If the job panics, the worker survives
    /// and the panic is only recorded in [`ThreadPool::caught_panics`] —
    /// use [`ThreadPool::run_all`] when the caller needs results or panic
    /// propagation.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.sender
            .as_ref()
            .expect("pool sender alive until drop") // audit: allow(no-panic): sender is Some until Drop; a None here is pool misuse, not input
            .send(Box::new(job))
            .expect("pool workers alive until drop"); // audit: allow(no-panic): workers only hang up after the sender drops, so send cannot fail
    }

    /// Runs every task on the pool and returns their results **in submission
    /// order**, blocking until all tasks completed.
    ///
    /// If any task panicked, the unwind is resumed on the calling thread with
    /// the payload of the earliest-submitted panicking task — but only after
    /// every other task of the batch has also finished, so no task of this
    /// batch is still touching its (moved-in) state when the caller regains
    /// control.
    pub fn run_all<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = tasks.len();
        let (result_tx, result_rx): ResultChannel<T> = channel();
        for (index, task) in tasks.into_iter().enumerate() {
            let tx = result_tx.clone();
            let caught = Arc::clone(&self.caught_panics);
            self.execute(move || {
                let outcome = catch_unwind(AssertUnwindSafe(task));
                if outcome.is_err() {
                    caught.fetch_add(1, Ordering::SeqCst);
                }
                // The receiver outlives the batch; ignoring a send error would
                // only be reachable if the caller's receive loop panicked.
                let _ = tx.send((index, outcome));
            });
        }
        drop(result_tx);
        let mut slots: Vec<Option<TaskOutcome<T>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (index, outcome) = result_rx
                .recv()
                .expect("a pool worker died before returning a result"); // audit: allow(no-panic): worker panics are caught in worker_loop; a dead worker is a pool bug
            slots[index] = Some(outcome);
        }
        let mut results = Vec::with_capacity(n);
        let mut first_panic = None;
        // audit: allow(no-panic): the loop above filled exactly one slot per received result
        for outcome in slots.into_iter().map(|s| s.expect("every slot filled")) {
            match outcome {
                Ok(value) => results.push(value),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        results
    }
}

type TaskOutcome<T> = Result<T, Box<dyn std::any::Any + Send + 'static>>;
type ResultChannel<T> = (
    Sender<(usize, TaskOutcome<T>)>,
    Receiver<(usize, TaskOutcome<T>)>,
);

fn worker_loop(receiver: &Mutex<Receiver<Job>>, caught: &AtomicUsize) {
    loop {
        // Take the next job while holding the lock, then release it before
        // running so other workers can pick up jobs concurrently.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            // A sibling worker panicked *while holding the lock* — impossible
            // for the recv() it guards, but be conservative and retire.
            Err(_) => return,
        };
        match job {
            Ok(job) => {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    caught.fetch_add(1, Ordering::SeqCst);
                }
            }
            // Channel closed: the pool is being dropped and the queue is
            // drained — retire.
            Err(_) => return,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets each worker drain remaining jobs and then
        // observe the disconnect; joining guarantees "drop drains".
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A job addressed to one actor worker: runs with exclusive access to that
/// worker's owned state.
type ActorJob<S> = Box<dyn FnOnce(&mut S) + Send + 'static>;

/// A pool of worker threads that each **own** a piece of state outright and
/// consume jobs from a private per-worker mailbox — the actor-style sibling
/// of [`ThreadPool`]'s shared queue.
///
/// Where [`ThreadPool`] hands interchangeable jobs to whichever worker is
/// free, `ActorPool` routes each job to a *specific* worker, which applies it
/// to the state only that worker can touch. No lock ever guards the state:
/// exclusivity comes from ownership (the state moves into the worker thread
/// at construction and never leaves), which keeps the whole arrangement free
/// of `unsafe` and free of lock contention. Jobs sent to the same worker run
/// in submission order (the mailbox is a FIFO channel); jobs sent to
/// different workers run concurrently.
///
/// Callers that need a result back capture the sending half of a channel in
/// the job and block on the receiving half:
///
/// ```
/// use std::sync::mpsc::channel;
/// use sitfact_core::pool::ActorPool;
///
/// // Two workers, each owning a running total.
/// let pool = ActorPool::new(vec![0u64, 100u64]);
/// pool.send(1, |total| *total += 5);
/// let (tx, rx) = channel();
/// pool.send(1, move |total| {
///     let _ = tx.send(*total);
/// });
/// assert_eq!(rx.recv().unwrap(), 105);
/// ```
///
/// **Panic containment.** A job that panics does not kill its worker or the
/// worker's state: the payload is caught with
/// [`catch_unwind`] and recorded in
/// [`ActorPool::caught_panics`], and the worker moves on to its next job. The
/// state may of course be logically mid-mutation at the point of the panic —
/// callers that care (the serving layer does) flag the affected portion as
/// poisoned from inside a subsequent job or via a result channel whose sender
/// was dropped by the unwind.
///
/// **Drop drains.** Dropping the pool closes every mailbox and joins every
/// worker, so all submitted jobs finish before `drop` returns.
#[derive(Debug)]
pub struct ActorPool<S> {
    mailboxes: Vec<Sender<ActorJob<S>>>,
    workers: Vec<JoinHandle<()>>,
    caught_panics: Arc<AtomicUsize>,
}

impl<S: Send + 'static> ActorPool<S> {
    /// Spawns one worker per element of `states`; worker `i` takes ownership
    /// of `states[i]`. An empty vector yields a pool with zero workers, on
    /// which every [`ActorPool::send`] returns `false`.
    pub fn new(states: Vec<S>) -> Self {
        let caught_panics = Arc::new(AtomicUsize::new(0));
        let mut mailboxes = Vec::with_capacity(states.len());
        let mut workers = Vec::with_capacity(states.len());
        for (i, state) in states.into_iter().enumerate() {
            let (sender, receiver) = channel::<ActorJob<S>>();
            let caught = Arc::clone(&caught_panics);
            let handle = std::thread::Builder::new()
                .name(format!("sitfact-actor-{i}"))
                .spawn(move || actor_loop(state, &receiver, &caught))
                .expect("spawn actor worker"); // audit: allow(no-panic): OS thread-spawn failure at pool construction is unrecoverable
            mailboxes.push(sender);
            workers.push(handle);
        }
        ActorPool {
            mailboxes,
            workers,
            caught_panics,
        }
    }

    /// Number of actor workers (= owned states).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of job panics caught so far across all workers.
    pub fn caught_panics(&self) -> usize {
        self.caught_panics.load(Ordering::SeqCst)
    }

    /// Enqueues `job` in worker `worker`'s mailbox. Returns `false` (without
    /// running the job) if the worker index is out of range; returns `true`
    /// once the job is enqueued. Jobs for the same worker run in submission
    /// order.
    pub fn send<F: FnOnce(&mut S) + Send + 'static>(&self, worker: usize, job: F) -> bool {
        match self.mailboxes.get(worker) {
            Some(mailbox) => mailbox.send(Box::new(job)).is_ok(),
            None => false,
        }
    }
}

fn actor_loop<S>(mut state: S, receiver: &Receiver<ActorJob<S>>, caught: &AtomicUsize) {
    // Runs until the mailbox disconnects (pool drop), draining all jobs.
    while let Ok(job) = receiver.recv() {
        if catch_unwind(AssertUnwindSafe(|| job(&mut state))).is_err() {
            caught.fetch_add(1, Ordering::SeqCst);
        }
    }
}

impl<S> Drop for ActorPool<S> {
    fn drop(&mut self) {
        // Closing every mailbox lets each worker drain its queue and retire;
        // joining guarantees "drop drains".
        self.mailboxes.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn run_all_preserves_submission_order() {
        let pool = ThreadPool::new(3);
        // Later tasks sleep less, so completion order is roughly reversed;
        // the results must come back in submission order regardless.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..9usize)
            .map(|i| {
                Box::new(move || {
                    std::thread::sleep(Duration::from_millis((9 - i) as u64));
                    i * 10
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        assert_eq!(
            pool.run_all(tasks),
            (0..9).map(|i| i * 10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_all_handles_empty_and_single() {
        let pool = ThreadPool::new(2);
        let none: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(pool.run_all(none).is_empty());
        let one: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 7)];
        assert_eq!(pool.run_all(one), vec![7]);
    }

    #[test]
    fn ownership_round_trips_through_tasks() {
        // The pattern the sharded monitor relies on: move state in, get it
        // back out, no borrows across threads.
        type StateTask = Box<dyn FnOnce() -> (Vec<u32>, usize) + Send>;
        let pool = ThreadPool::new(2);
        let states: Vec<Vec<u32>> = vec![vec![1, 2], vec![3], vec![]];
        let tasks: Vec<StateTask> = states
            .into_iter()
            .map(|mut v| {
                Box::new(move || {
                    v.push(99);
                    let len = v.len();
                    (v, len)
                }) as StateTask
            })
            .collect();
        let results = pool.run_all(tasks);
        assert_eq!(results[0], (vec![1, 2, 99], 3));
        assert_eq!(results[1], (vec![3, 99], 2));
        assert_eq!(results[2], (vec![99], 1));
    }

    #[test]
    fn panicking_task_propagates_with_payload() {
        let pool = ThreadPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("shard exploded")),
            Box::new(|| 3),
        ];
        let unwound = catch_unwind(AssertUnwindSafe(|| pool.run_all(tasks)));
        let payload = unwound.expect_err("panic must propagate to the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("original payload is preserved");
        assert_eq!(message, "shard exploded");
        assert_eq!(pool.caught_panics(), 1);
        // The worker survived the panic: the pool still runs work.
        let again: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| 42)];
        assert_eq!(pool.run_all(again), vec![42]);
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            // One worker and many slow-ish jobs: most are still queued when
            // drop begins, and drop must wait for all of them.
            let pool = ThreadPool::new(1);
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    std::thread::sleep(Duration::from_millis(1));
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn fire_and_forget_panic_does_not_kill_the_pool() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("ignored"));
        let flag = Arc::new(AtomicBool::new(false));
        let observer = Arc::clone(&flag);
        pool.execute(move || observer.store(true, Ordering::SeqCst));
        drop(pool); // joins; both jobs ran on the same (surviving) worker
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.num_threads(), 1);
        assert!(ThreadPool::for_available_parallelism().num_threads() >= 1);
    }

    /// Loom-style deterministic interleaving check, offline edition: real
    /// loom is unavailable (no crates.io), so instead of exploring all
    /// interleavings the test *forces* the adversarial one with a rendezvous
    /// channel — task 0 is made to finish strictly after task 1, which is the
    /// interleaving that would expose index-mixups or lost results in the
    /// fan-in path.
    #[test]
    fn forced_out_of_order_completion_is_reassembled() {
        let pool = ThreadPool::new(2);
        let (unblock_tx, unblock_rx) = channel::<()>();
        let tasks: Vec<Box<dyn FnOnce() -> &'static str + Send>> = vec![
            Box::new(move || {
                // Deterministically last: waits until task 1 completed.
                unblock_rx
                    .recv_timeout(Duration::from_secs(10))
                    .expect("task 1 signals before timeout");
                "first-submitted"
            }),
            Box::new(move || {
                unblock_tx.send(()).expect("task 0 is alive and waiting");
                "second-submitted"
            }),
        ];
        assert_eq!(
            pool.run_all(tasks),
            vec!["first-submitted", "second-submitted"]
        );
    }

    #[test]
    fn actor_jobs_route_to_their_owner_and_run_in_order() {
        let pool = ActorPool::new(vec![Vec::<u32>::new(), Vec::new()]);
        for i in 0..10u32 {
            assert!(pool.send((i % 2) as usize, move |v| v.push(i)));
        }
        // Drain both mailboxes through a response channel: per-worker FIFO
        // means these observer jobs run after all pushes above.
        let (tx0, rx0) = channel();
        let (tx1, rx1) = channel();
        pool.send(0, move |v| {
            let _ = tx0.send(v.clone());
        });
        pool.send(1, move |v| {
            let _ = tx1.send(v.clone());
        });
        assert_eq!(rx0.recv().expect("worker 0 replies"), vec![0, 2, 4, 6, 8]);
        assert_eq!(rx1.recv().expect("worker 1 replies"), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn actor_send_out_of_range_is_rejected() {
        let pool = ActorPool::new(vec![0u8]);
        assert!(!pool.send(1, |_| {}));
        let empty: ActorPool<u8> = ActorPool::new(Vec::new());
        assert_eq!(empty.num_workers(), 0);
        assert!(!empty.send(0, |_| {}));
    }

    #[test]
    fn actor_worker_survives_a_panicking_job() {
        let pool = ActorPool::new(vec![7u64]);
        pool.send(0, |_| panic!("actor job exploded"));
        let (tx, rx) = channel();
        pool.send(0, move |state| {
            *state += 1;
            let _ = tx.send(*state);
        });
        assert_eq!(rx.recv().expect("worker survived"), 8);
        assert_eq!(pool.caught_panics(), 1);
    }

    #[test]
    fn actor_drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ActorPool::new(vec![()]);
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                pool.send(0, move |()| {
                    std::thread::sleep(Duration::from_millis(1));
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }
}
