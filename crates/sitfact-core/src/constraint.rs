//! Conjunctive constraints over dimension attributes (Definition 1), their
//! subsumption partial order (Definition 5), and the bound-attribute bitmasks
//! used inside per-tuple lattices.

use crate::error::{Result, SitFactError};
use crate::schema::Schema;
use crate::tuple::TupleView;
use crate::value::{DimValueId, UNBOUND};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bitmask over dimension attributes: bit `i` set iff attribute `d_i` is
/// *bound* in a constraint.
///
/// Inside the lattice of tuple-satisfied constraints `C^t`, a constraint is
/// fully determined by which attributes are bound (the bound value is forced
/// to `t.d_i`), so the traversal algorithms manipulate only these masks and
/// materialise a full [`Constraint`] just before touching the skyline store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BoundMask(pub u32);

impl BoundMask {
    /// The most general constraint `⊤ = ⟨*, *, …, *⟩` (nothing bound).
    pub const TOP: BoundMask = BoundMask(0);

    /// The mask binding every one of `n` attributes (the lattice bottom
    /// `⊥(C^t)` when no `d̂` cap applies).
    #[inline]
    pub fn all(n: usize) -> Self {
        debug_assert!(n <= 32);
        if n == 32 {
            BoundMask(u32::MAX)
        } else {
            BoundMask((1u32 << n) - 1)
        }
    }

    /// Builds a mask from bound attribute indexes.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut mask = 0u32;
        for i in indices {
            mask |= 1 << i;
        }
        BoundMask(mask)
    }

    /// Number of bound attributes (`bound(C)` in the paper).
    #[inline]
    pub fn bound_count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether attribute `i` is bound.
    #[inline]
    pub fn is_bound(self, i: usize) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Whether this is the top (empty) mask.
    #[inline]
    pub fn is_top(self) -> bool {
        self.0 == 0
    }

    /// `self ⊑ other` in the *mask* ordering: every attribute bound in `self`
    /// is also bound in `other`.
    ///
    /// Note the direction: binding **fewer** attributes gives a **more
    /// general** constraint, so in the constraint subsumption order of the
    /// paper, `self` (as a constraint of `C^t`) subsumes `other` iff
    /// `self.is_submask_of(other)`.
    #[inline]
    pub fn is_submask_of(self, other: BoundMask) -> bool {
        self.0 & !other.0 == 0
    }

    /// Intersection of the bound-attribute sets.
    #[inline]
    pub fn intersect(self, other: BoundMask) -> BoundMask {
        BoundMask(self.0 & other.0)
    }

    /// Union of the bound-attribute sets.
    #[inline]
    pub fn union(self, other: BoundMask) -> BoundMask {
        BoundMask(self.0 | other.0)
    }

    /// Iterates the indexes of bound attributes, in increasing order.
    pub fn indices(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Parents in the lattice of tuple-satisfied constraints: masks obtained
    /// by unbinding exactly one bound attribute (more general by one).
    pub fn parents(self) -> impl Iterator<Item = BoundMask> {
        let mask = self;
        mask.indices().map(move |i| BoundMask(mask.0 & !(1 << i)))
    }

    /// Children within an `n`-attribute dimension space: masks obtained by
    /// binding exactly one additional attribute (more specific by one).
    pub fn children(self, n: usize) -> impl Iterator<Item = BoundMask> {
        let mask = self;
        (0..n)
            .filter(move |&i| !mask.is_bound(i))
            .map(move |i| BoundMask(mask.0 | (1 << i)))
    }

    /// All proper ancestors (strictly more general masks): every proper
    /// submask of `self`.
    pub fn ancestors(self) -> Vec<BoundMask> {
        let mut out = Vec::new();
        // Enumerate proper submasks of self.0.
        let full = self.0;
        if full == 0 {
            return out;
        }
        let mut sub = (full - 1) & full;
        loop {
            out.push(BoundMask(sub));
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & full;
        }
        out
    }

    /// All submasks of `self`, including `self` and the top mask. This is the
    /// shape of `C^{t,t'} ∩ C^t` when `self` is the agreement mask of `t` and
    /// `t'` (Definition 8 / Proposition 3).
    pub fn submasks(self) -> Vec<BoundMask> {
        let full = self.0;
        let mut out = Vec::with_capacity(1usize << self.bound_count());
        let mut sub = full;
        loop {
            out.push(BoundMask(sub));
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & full;
        }
        out
    }

    /// The agreement mask of two tuples: attributes on which they share the
    /// same dimension value. The sub-lattice of constraints satisfied by both
    /// tuples, `C^{t,t'} ∩ C^t`, is exactly the set of submasks of this mask
    /// (the bottom `⊥(C^{t,t'})` of Definition 8 is the mask itself).
    pub fn agreement(left: impl TupleView, right: impl TupleView) -> BoundMask {
        debug_assert_eq!(left.num_dims(), right.num_dims());
        let mut mask = 0u32;
        for i in 0..left.num_dims() {
            if left.dim(i) == right.dim(i) {
                mask |= 1 << i;
            }
        }
        BoundMask(mask)
    }
}

impl fmt::Display for BoundMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:b}", self.0)
    }
}

/// A conjunctive constraint `d_1=v_1 ∧ … ∧ d_n=v_n` where each `v_i` is either
/// a dictionary-encoded value or `*` (unbound).
///
/// `Constraint` is the *global* representation used as a key of the skyline
/// stores and reported in discovered facts; inside a per-tuple lattice the
/// compact [`BoundMask`] form is used instead.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Constraint {
    values: Box<[DimValueId]>,
}

impl Constraint {
    /// The most general constraint over `n` dimension attributes.
    pub fn top(n: usize) -> Self {
        Constraint {
            values: vec![UNBOUND; n].into_boxed_slice(),
        }
    }

    /// Builds a constraint from raw per-attribute values (`UNBOUND` = `*`).
    pub fn from_values(values: Vec<DimValueId>) -> Self {
        Constraint {
            values: values.into_boxed_slice(),
        }
    }

    /// The constraint obtained by binding exactly the attributes of `mask` to
    /// the corresponding values of `tuple` — an element of `C^t`.
    pub fn from_tuple_mask(tuple: impl TupleView, mask: BoundMask) -> Self {
        let mut values = vec![UNBOUND; tuple.num_dims()];
        for i in mask.indices() {
            values[i] = tuple.dim(i);
        }
        Constraint {
            values: values.into_boxed_slice(),
        }
    }

    /// Builds a constraint by name from string values, e.g.
    /// `[("team", "Celtics"), ("opp_team", "Nets")]`. Values must already be
    /// present in the schema's dictionaries.
    pub fn parse(schema: &Schema, bindings: &[(&str, &str)]) -> Result<Self> {
        let mut values = vec![UNBOUND; schema.num_dimensions()];
        for (attr, value) in bindings {
            let idx = schema.dimension_index(attr).ok_or_else(|| {
                SitFactError::InvalidConstraint(format!("unknown dimension attribute `{attr}`"))
            })?;
            let id = schema.dictionary(idx).lookup(value).ok_or_else(|| {
                SitFactError::InvalidConstraint(format!(
                    "value `{value}` was never observed for attribute `{attr}`"
                ))
            })?;
            values[idx] = id;
        }
        Ok(Constraint {
            values: values.into_boxed_slice(),
        })
    }

    /// Per-attribute values (`UNBOUND` marks `*`).
    pub fn values(&self) -> &[DimValueId] {
        &self.values
    }

    /// Number of dimension attributes of the underlying schema.
    pub fn num_dims(&self) -> usize {
        self.values.len()
    }

    /// The bound-attribute mask of this constraint.
    pub fn bound_mask(&self) -> BoundMask {
        let mut mask = 0u32;
        for (i, &v) in self.values.iter().enumerate() {
            if v != UNBOUND {
                mask |= 1 << i;
            }
        }
        BoundMask(mask)
    }

    /// `bound(C)`: the number of bound attributes.
    pub fn bound_count(&self) -> usize {
        self.values.iter().filter(|&&v| v != UNBOUND).count()
    }

    /// Whether attribute `dim` is bound (out-of-range indexes are unbound).
    #[inline]
    pub fn binds(&self, dim: usize) -> bool {
        self.bound_value(dim).is_some()
    }

    /// The value attribute `dim` is bound to, or `None` when it is `*` (or
    /// out of range).
    #[inline]
    pub fn bound_value(&self, dim: usize) -> Option<DimValueId> {
        match self.values.get(dim) {
            Some(&v) if v != UNBOUND => Some(v),
            _ => None,
        }
    }

    /// Whether this is the most general constraint `⊤`.
    pub fn is_top(&self) -> bool {
        self.values.iter().all(|&v| v == UNBOUND)
    }

    /// Whether `tuple` satisfies the constraint (belongs to the context
    /// `σ_C(R)`).
    #[inline]
    pub fn matches(&self, tuple: impl TupleView) -> bool {
        debug_assert_eq!(tuple.num_dims(), self.values.len());
        self.values
            .iter()
            .enumerate()
            .all(|(i, &v)| v == UNBOUND || tuple.dim(i) == v)
    }

    /// `self ⊴ other`: `self` is subsumed by or equal to `other`
    /// (Definition 5) — `other` is at least as general.
    pub fn is_subsumed_by(&self, other: &Constraint) -> bool {
        debug_assert_eq!(self.values.len(), other.values.len());
        self.values
            .iter()
            .zip(other.values.iter())
            .all(|(&mine, &theirs)| theirs == UNBOUND || theirs == mine)
    }

    /// `self ⊲ other`: strictly subsumed (subsumed and not equal).
    pub fn is_strictly_subsumed_by(&self, other: &Constraint) -> bool {
        self != other && self.is_subsumed_by(other)
    }

    /// Renders the constraint with resolved dictionary values, e.g.
    /// `month=Feb ∧ team=Celtics` (the empty conjunction renders as `⊤`).
    pub fn display(&self, schema: &Schema) -> String {
        let parts: Vec<String> = self
            .values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != UNBOUND)
            .map(|(i, &v)| {
                format!(
                    "{}={}",
                    schema.dimension_names()[i],
                    schema.resolve_dim(i, v).unwrap_or("?")
                )
            })
            .collect();
        if parts.is_empty() {
            "⊤".to_string()
        } else {
            parts.join(" ∧ ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::tuple::Tuple;
    use crate::value::Direction;

    fn tuple(dims: &[u32]) -> Tuple {
        Tuple::new(dims.to_vec(), vec![0.0])
    }

    #[test]
    fn bound_mask_basics() {
        let m = BoundMask::from_indices([0, 2]);
        assert_eq!(m.bound_count(), 2);
        assert!(m.is_bound(0));
        assert!(!m.is_bound(1));
        assert!(m.is_bound(2));
        assert!(!m.is_top());
        assert!(BoundMask::TOP.is_top());
        assert_eq!(BoundMask::all(3).0, 0b111);
        assert_eq!(m.indices().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn parents_unbind_one_attribute() {
        let m = BoundMask(0b101);
        let parents: Vec<BoundMask> = m.parents().collect();
        assert_eq!(parents.len(), 2);
        assert!(parents.contains(&BoundMask(0b100)));
        assert!(parents.contains(&BoundMask(0b001)));
        assert!(BoundMask::TOP.parents().next().is_none());
    }

    #[test]
    fn children_bind_one_attribute() {
        let m = BoundMask(0b001);
        let children: Vec<BoundMask> = m.children(3).collect();
        assert_eq!(children.len(), 2);
        assert!(children.contains(&BoundMask(0b011)));
        assert!(children.contains(&BoundMask(0b101)));
        assert!(BoundMask::all(3).children(3).next().is_none());
    }

    #[test]
    fn ancestors_are_proper_submasks() {
        let m = BoundMask(0b011);
        let mut anc = m.ancestors();
        anc.sort();
        assert_eq!(
            anc,
            vec![BoundMask(0b000), BoundMask(0b001), BoundMask(0b010)]
        );
        assert!(BoundMask::TOP.ancestors().is_empty());
    }

    #[test]
    fn submasks_include_self_and_top() {
        let m = BoundMask(0b110);
        let mut subs = m.submasks();
        subs.sort();
        assert_eq!(
            subs,
            vec![
                BoundMask(0b000),
                BoundMask(0b010),
                BoundMask(0b100),
                BoundMask(0b110)
            ]
        );
        assert_eq!(BoundMask::TOP.submasks(), vec![BoundMask::TOP]);
    }

    #[test]
    fn agreement_mask_matches_definition_8() {
        // Running-example tuples t4 = (a2, b1, c1) and t5 = (a1, b1, c1):
        // ⊥(C^{t4,t5}) = ⟨*, b1, c1⟩, i.e. agreement on attributes 1 and 2.
        let t4 = tuple(&[1, 0, 0]);
        let t5 = tuple(&[0, 0, 0]);
        assert_eq!(BoundMask::agreement(&t4, &t5), BoundMask(0b110));
        // No shared values -> agreement is the top mask.
        let x = tuple(&[1, 2, 3]);
        let y = tuple(&[4, 5, 6]);
        assert_eq!(BoundMask::agreement(&x, &y), BoundMask::TOP);
        // Identical tuples agree everywhere.
        assert_eq!(BoundMask::agreement(&t5, &t5), BoundMask::all(3));
    }

    #[test]
    fn constraint_from_tuple_mask() {
        let t = tuple(&[7, 8, 9]);
        let c = Constraint::from_tuple_mask(&t, BoundMask(0b101));
        assert_eq!(c.values(), &[7, UNBOUND, 9]);
        assert_eq!(c.bound_count(), 2);
        assert_eq!(c.bound_mask(), BoundMask(0b101));
        assert!(c.matches(&t));
        assert!(!c.is_top());
        assert!(Constraint::top(3).is_top());
    }

    #[test]
    fn binds_and_bound_value() {
        let c = Constraint::from_values(vec![5, UNBOUND, 2]);
        assert!(c.binds(0));
        assert!(!c.binds(1));
        assert_eq!(c.bound_value(2), Some(2));
        assert_eq!(c.bound_value(1), None);
        // Out-of-range indexes read as unbound rather than panicking.
        assert!(!c.binds(99));
        assert_eq!(c.bound_value(99), None);
    }

    #[test]
    fn matches_respects_bound_values() {
        let c = Constraint::from_values(vec![5, UNBOUND, 2]);
        assert!(c.matches(tuple(&[5, 99, 2])));
        assert!(!c.matches(tuple(&[5, 99, 3])));
        assert!(!c.matches(tuple(&[4, 99, 2])));
        assert!(Constraint::top(3).matches(tuple(&[1, 2, 3])));
    }

    #[test]
    fn subsumption_matches_example_4() {
        // C1 = ⟨a, b, c⟩ is subsumed by C2 = ⟨a, *, c⟩.
        let c1 = Constraint::from_values(vec![0, 1, 2]);
        let c2 = Constraint::from_values(vec![0, UNBOUND, 2]);
        assert!(c1.is_subsumed_by(&c2));
        assert!(c1.is_strictly_subsumed_by(&c2));
        assert!(!c2.is_subsumed_by(&c1));
        // Every constraint is subsumed by itself (non-strictly) and by ⊤.
        assert!(c1.is_subsumed_by(&c1));
        assert!(!c1.is_strictly_subsumed_by(&c1));
        assert!(c1.is_subsumed_by(&Constraint::top(3)));
        // Different bound values are not subsumed.
        let c3 = Constraint::from_values(vec![9, UNBOUND, 2]);
        assert!(!c1.is_subsumed_by(&c3));
    }

    #[test]
    fn parse_and_display() {
        let mut schema = SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .dimension("month")
            .measure("points", Direction::HigherIsBetter)
            .build()
            .unwrap();
        schema.intern_dims(&["Wesley", "Celtics", "Feb"]).unwrap();
        let c = Constraint::parse(&schema, &[("team", "Celtics"), ("month", "Feb")]).unwrap();
        assert_eq!(c.bound_count(), 2);
        let shown = c.display(&schema);
        assert!(shown.contains("team=Celtics"));
        assert!(shown.contains("month=Feb"));
        assert_eq!(Constraint::top(3).display(&schema), "⊤");
        // Unknown attribute and unknown value are rejected.
        assert!(Constraint::parse(&schema, &[("city", "Boston")]).is_err());
        assert!(Constraint::parse(&schema, &[("team", "Lakers")]).is_err());
    }

    #[test]
    fn subsumption_is_consistent_with_masks() {
        // For constraints derived from the same tuple, subsumption must agree
        // with the submask relation (fewer bound attributes = more general).
        let t = tuple(&[3, 4, 5, 6]);
        for a in 0..16u32 {
            for b in 0..16u32 {
                let ca = Constraint::from_tuple_mask(&t, BoundMask(a));
                let cb = Constraint::from_tuple_mask(&t, BoundMask(b));
                assert_eq!(
                    ca.is_subsumed_by(&cb),
                    BoundMask(b).is_submask_of(BoundMask(a)),
                    "a={a:04b} b={b:04b}"
                );
            }
        }
    }
}
