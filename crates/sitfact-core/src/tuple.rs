//! Tuples of the append-only relation.

use crate::error::{Result, SitFactError};
use crate::schema::Schema;
use crate::value::DimValueId;

/// Position of a tuple in the append-only table (also its arrival timestamp:
/// tuple `i` arrived before tuple `j` iff `i < j`).
pub type TupleId = u32;

/// A single row: dictionary-encoded dimension values plus raw measure values.
///
/// Tuples are deliberately plain data — all semantics (directions, which
/// attributes are dimensions vs. measures) live in the [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    dims: Vec<DimValueId>,
    measures: Vec<f64>,
}

impl Tuple {
    /// Creates a tuple from encoded dimension ids and measure values.
    ///
    /// Use [`Tuple::validated`] when the tuple comes from external input and
    /// should be checked against a schema.
    pub fn new(dims: Vec<DimValueId>, measures: Vec<f64>) -> Self {
        Self { dims, measures }
    }

    /// Creates a tuple and validates it against `schema`: arity must match and
    /// measures must be finite.
    pub fn validated(dims: Vec<DimValueId>, measures: Vec<f64>, schema: &Schema) -> Result<Self> {
        if dims.len() != schema.num_dimensions() {
            return Err(SitFactError::InvalidTuple(format!(
                "expected {} dimension values, got {}",
                schema.num_dimensions(),
                dims.len()
            )));
        }
        if measures.len() != schema.num_measures() {
            return Err(SitFactError::InvalidTuple(format!(
                "expected {} measure values, got {}",
                schema.num_measures(),
                measures.len()
            )));
        }
        if let Some(idx) = measures.iter().position(|m| !m.is_finite()) {
            return Err(SitFactError::InvalidTuple(format!(
                "measure `{}` is not a finite number",
                schema.measures()[idx].name
            )));
        }
        Ok(Self { dims, measures })
    }

    /// The dictionary-encoded dimension values.
    #[inline]
    pub fn dims(&self) -> &[DimValueId] {
        &self.dims
    }

    /// The measure values.
    #[inline]
    pub fn measures(&self) -> &[f64] {
        &self.measures
    }

    /// Value of dimension attribute `i`.
    #[inline]
    pub fn dim(&self, i: usize) -> DimValueId {
        self.dims[i]
    }

    /// Value of measure attribute `i`.
    #[inline]
    pub fn measure(&self, i: usize) -> f64 {
        self.measures[i]
    }

    /// Number of dimension attributes in this tuple.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Number of measure attributes in this tuple.
    pub fn num_measures(&self) -> usize {
        self.measures.len()
    }

    /// Renders the tuple with resolved dimension strings, for logs and fact
    /// narration.
    pub fn display(&self, schema: &Schema) -> String {
        let dims: Vec<String> = self
            .dims
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                format!(
                    "{}={}",
                    schema.dimension_names()[i],
                    schema.resolve_dim(i, id).unwrap_or("?")
                )
            })
            .collect();
        let measures: Vec<String> = self
            .measures
            .iter()
            .enumerate()
            .map(|(i, v)| format!("{}={}", schema.measures()[i].name, v))
            .collect();
        format!("[{} | {}]", dims.join(", "), measures.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::Direction;

    fn schema() -> Schema {
        SchemaBuilder::new("t")
            .dimension("a")
            .dimension("b")
            .measure("m1", Direction::HigherIsBetter)
            .measure("m2", Direction::LowerIsBetter)
            .build()
            .unwrap()
    }

    #[test]
    fn accessors() {
        let t = Tuple::new(vec![1, 2], vec![10.0, 3.0]);
        assert_eq!(t.dims(), &[1, 2]);
        assert_eq!(t.measures(), &[10.0, 3.0]);
        assert_eq!(t.dim(1), 2);
        assert_eq!(t.measure(0), 10.0);
        assert_eq!(t.num_dims(), 2);
        assert_eq!(t.num_measures(), 2);
    }

    #[test]
    fn validation_accepts_matching_tuple() {
        let s = schema();
        assert!(Tuple::validated(vec![0, 0], vec![1.0, 2.0], &s).is_ok());
    }

    #[test]
    fn validation_rejects_bad_arity() {
        let s = schema();
        assert!(Tuple::validated(vec![0], vec![1.0, 2.0], &s).is_err());
        assert!(Tuple::validated(vec![0, 0], vec![1.0], &s).is_err());
    }

    #[test]
    fn validation_rejects_non_finite_measures() {
        let s = schema();
        assert!(Tuple::validated(vec![0, 0], vec![f64::NAN, 2.0], &s).is_err());
        assert!(Tuple::validated(vec![0, 0], vec![1.0, f64::INFINITY], &s).is_err());
    }

    #[test]
    fn display_resolves_dictionary_values() {
        let mut s = schema();
        let ids = s.intern_dims(&["Wesley", "Celtics"]).unwrap();
        let t = Tuple::new(ids, vec![12.0, 1.0]);
        let rendered = t.display(&s);
        assert!(rendered.contains("a=Wesley"));
        assert!(rendered.contains("b=Celtics"));
        assert!(rendered.contains("m1=12"));
    }
}
