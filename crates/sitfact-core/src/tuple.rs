//! Tuples of the append-only relation: the owned [`Tuple`], the borrowed
//! zero-copy [`TupleRef`] view, and the [`TupleView`] abstraction both
//! implement.

use crate::error::{Result, SitFactError};
use crate::schema::Schema;
use crate::value::DimValueId;

/// Position of a tuple in the append-only table (also its arrival timestamp:
/// tuple `i` arrived before tuple `j` iff `i < j`).
pub type TupleId = u32;

/// Read access to a tuple's dimension and measure values.
///
/// The dominance routines, constraint operations and narration all accept
/// `impl TupleView` so they work identically on an owned [`Tuple`], a borrowed
/// `&Tuple`, or a zero-copy [`TupleRef`] produced by the columnar table —
/// the hot discovery loop never has to materialise a row.
pub trait TupleView {
    /// The dictionary-encoded dimension values.
    fn dims(&self) -> &[DimValueId];

    /// The measure values.
    fn measures(&self) -> &[f64];

    /// Value of dimension attribute `i`.
    #[inline]
    fn dim(&self, i: usize) -> DimValueId {
        self.dims()[i]
    }

    /// Value of measure attribute `i`.
    #[inline]
    fn measure(&self, i: usize) -> f64 {
        self.measures()[i]
    }

    /// Number of dimension attributes in this tuple.
    #[inline]
    fn num_dims(&self) -> usize {
        self.dims().len()
    }

    /// Number of measure attributes in this tuple.
    #[inline]
    fn num_measures(&self) -> usize {
        self.measures().len()
    }

    /// A borrowed view of this tuple.
    #[inline]
    fn as_tuple_ref(&self) -> TupleRef<'_> {
        TupleRef::new(self.dims(), self.measures())
    }

    /// Copies the values into an owned [`Tuple`].
    fn to_tuple(&self) -> Tuple {
        Tuple::new(self.dims().to_vec(), self.measures().to_vec())
    }
}

impl<T: TupleView + ?Sized> TupleView for &T {
    #[inline]
    fn dims(&self) -> &[DimValueId] {
        (**self).dims()
    }

    #[inline]
    fn measures(&self) -> &[f64] {
        (**self).measures()
    }
}

/// A single row: dictionary-encoded dimension values plus raw measure values.
///
/// Tuples are deliberately plain data — all semantics (directions, which
/// attributes are dimensions vs. measures) live in the [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    dims: Vec<DimValueId>,
    measures: Vec<f64>,
}

impl Tuple {
    /// Creates a tuple from encoded dimension ids and measure values.
    ///
    /// Use [`Tuple::validated`] when the tuple comes from external input and
    /// should be checked against a schema.
    pub fn new(dims: Vec<DimValueId>, measures: Vec<f64>) -> Self {
        Self { dims, measures }
    }

    /// Creates a tuple and validates it against `schema`: arity must match and
    /// measures must be finite.
    pub fn validated(dims: Vec<DimValueId>, measures: Vec<f64>, schema: &Schema) -> Result<Self> {
        let tuple = Self { dims, measures };
        tuple.validate(schema)?;
        Ok(tuple)
    }

    /// Validates this tuple against `schema` without consuming or copying it:
    /// arity must match and measures must be finite.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        validate_parts(&self.dims, &self.measures, schema)
    }

    /// The dictionary-encoded dimension values.
    #[inline]
    pub fn dims(&self) -> &[DimValueId] {
        &self.dims
    }

    /// The measure values.
    #[inline]
    pub fn measures(&self) -> &[f64] {
        &self.measures
    }

    /// Value of dimension attribute `i`.
    #[inline]
    pub fn dim(&self, i: usize) -> DimValueId {
        self.dims[i]
    }

    /// Value of measure attribute `i`.
    #[inline]
    pub fn measure(&self, i: usize) -> f64 {
        self.measures[i]
    }

    /// Number of dimension attributes in this tuple.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Number of measure attributes in this tuple.
    pub fn num_measures(&self) -> usize {
        self.measures.len()
    }

    /// Consumes the tuple, returning its dimension and measure vectors.
    pub fn into_parts(self) -> (Vec<DimValueId>, Vec<f64>) {
        (self.dims, self.measures)
    }

    /// Renders the tuple with resolved dimension strings, for logs and fact
    /// narration.
    pub fn display(&self, schema: &Schema) -> String {
        display_parts(&self.dims, &self.measures, schema)
    }
}

impl TupleView for Tuple {
    #[inline]
    fn dims(&self) -> &[DimValueId] {
        &self.dims
    }

    #[inline]
    fn measures(&self) -> &[f64] {
        &self.measures
    }
}

/// A borrowed, zero-copy view of one tuple: a dimension slice plus a measure
/// slice, typically pointing straight into the columnar table's flat arrays.
///
/// `TupleRef` is `Copy` — passing one around costs two fat pointers and never
/// touches the heap, which is what keeps per-tuple context iteration
/// allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TupleRef<'a> {
    dims: &'a [DimValueId],
    measures: &'a [f64],
}

impl<'a> TupleRef<'a> {
    /// Creates a view over borrowed dimension and measure slices.
    #[inline]
    pub fn new(dims: &'a [DimValueId], measures: &'a [f64]) -> Self {
        TupleRef { dims, measures }
    }

    /// The dictionary-encoded dimension values.
    #[inline]
    pub fn dims(self) -> &'a [DimValueId] {
        self.dims
    }

    /// The measure values.
    #[inline]
    pub fn measures(self) -> &'a [f64] {
        self.measures
    }

    /// Value of dimension attribute `i`.
    #[inline]
    pub fn dim(self, i: usize) -> DimValueId {
        self.dims[i]
    }

    /// Value of measure attribute `i`.
    #[inline]
    pub fn measure(self, i: usize) -> f64 {
        self.measures[i]
    }

    /// Number of dimension attributes in this view.
    #[inline]
    pub fn num_dims(self) -> usize {
        self.dims.len()
    }

    /// Number of measure attributes in this view.
    #[inline]
    pub fn num_measures(self) -> usize {
        self.measures.len()
    }

    /// Copies the viewed values into an owned [`Tuple`].
    pub fn to_tuple(self) -> Tuple {
        Tuple::new(self.dims.to_vec(), self.measures.to_vec())
    }

    /// Renders the tuple with resolved dimension strings, for logs and fact
    /// narration.
    pub fn display(self, schema: &Schema) -> String {
        display_parts(self.dims, self.measures, schema)
    }
}

impl TupleView for TupleRef<'_> {
    #[inline]
    fn dims(&self) -> &[DimValueId] {
        self.dims
    }

    #[inline]
    fn measures(&self) -> &[f64] {
        self.measures
    }
}

impl<'a> From<&'a Tuple> for TupleRef<'a> {
    #[inline]
    fn from(tuple: &'a Tuple) -> Self {
        TupleRef::new(&tuple.dims, &tuple.measures)
    }
}

fn validate_parts(dims: &[DimValueId], measures: &[f64], schema: &Schema) -> Result<()> {
    if dims.len() != schema.num_dimensions() {
        return Err(SitFactError::InvalidTuple(format!(
            "expected {} dimension values, got {}",
            schema.num_dimensions(),
            dims.len()
        )));
    }
    if measures.len() != schema.num_measures() {
        return Err(SitFactError::InvalidTuple(format!(
            "expected {} measure values, got {}",
            schema.num_measures(),
            measures.len()
        )));
    }
    if let Some(idx) = measures.iter().position(|m| !m.is_finite()) {
        return Err(SitFactError::InvalidTuple(format!(
            "measure `{}` is not a finite number",
            schema.measures()[idx].name
        )));
    }
    Ok(())
}

fn display_parts(dims: &[DimValueId], measures: &[f64], schema: &Schema) -> String {
    let dims: Vec<String> = dims
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            format!(
                "{}={}",
                schema.dimension_names()[i],
                schema.resolve_dim(i, id).unwrap_or("?")
            )
        })
        .collect();
    let measures: Vec<String> = measures
        .iter()
        .enumerate()
        .map(|(i, v)| format!("{}={}", schema.measures()[i].name, v))
        .collect();
    format!("[{} | {}]", dims.join(", "), measures.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::Direction;

    fn schema() -> Schema {
        SchemaBuilder::new("t")
            .dimension("a")
            .dimension("b")
            .measure("m1", Direction::HigherIsBetter)
            .measure("m2", Direction::LowerIsBetter)
            .build()
            .unwrap()
    }

    #[test]
    fn accessors() {
        let t = Tuple::new(vec![1, 2], vec![10.0, 3.0]);
        assert_eq!(t.dims(), &[1, 2]);
        assert_eq!(t.measures(), &[10.0, 3.0]);
        assert_eq!(t.dim(1), 2);
        assert_eq!(t.measure(0), 10.0);
        assert_eq!(t.num_dims(), 2);
        assert_eq!(t.num_measures(), 2);
    }

    #[test]
    fn tuple_ref_views_the_same_data() {
        let t = Tuple::new(vec![1, 2], vec![10.0, 3.0]);
        let r = TupleRef::from(&t);
        assert_eq!(r.dims(), t.dims());
        assert_eq!(r.measures(), t.measures());
        assert_eq!(r.dim(0), 1);
        assert_eq!(r.measure(1), 3.0);
        assert_eq!(r.num_dims(), 2);
        assert_eq!(r.num_measures(), 2);
        // Round-trip back to an owned tuple.
        assert_eq!(r.to_tuple(), t);
        // TupleRef is Copy.
        let s = r;
        assert_eq!(s, r);
    }

    #[test]
    fn tuple_view_is_object_and_value_polymorphic() {
        fn first_measure(t: impl TupleView) -> f64 {
            t.measure(0)
        }
        let t = Tuple::new(vec![0], vec![7.0]);
        assert_eq!(first_measure(&t), 7.0);
        assert_eq!(first_measure(t.as_tuple_ref()), 7.0);
        assert_eq!(first_measure(t), 7.0);
    }

    #[test]
    fn into_parts_round_trips() {
        let t = Tuple::new(vec![4, 5], vec![1.0, 2.0]);
        let (dims, measures) = t.into_parts();
        assert_eq!(dims, vec![4, 5]);
        assert_eq!(measures, vec![1.0, 2.0]);
    }

    #[test]
    fn validation_accepts_matching_tuple() {
        let s = schema();
        assert!(Tuple::validated(vec![0, 0], vec![1.0, 2.0], &s).is_ok());
        assert!(Tuple::new(vec![0, 0], vec![1.0, 2.0]).validate(&s).is_ok());
    }

    #[test]
    fn validation_rejects_bad_arity() {
        let s = schema();
        assert!(Tuple::validated(vec![0], vec![1.0, 2.0], &s).is_err());
        assert!(Tuple::validated(vec![0, 0], vec![1.0], &s).is_err());
    }

    #[test]
    fn validation_rejects_non_finite_measures() {
        let s = schema();
        assert!(Tuple::validated(vec![0, 0], vec![f64::NAN, 2.0], &s).is_err());
        assert!(Tuple::validated(vec![0, 0], vec![1.0, f64::INFINITY], &s).is_err());
    }

    #[test]
    fn display_resolves_dictionary_values() {
        let mut s = schema();
        let ids = s.intern_dims(&["Wesley", "Celtics"]).unwrap();
        let t = Tuple::new(ids, vec![12.0, 1.0]);
        let rendered = t.display(&s);
        assert!(rendered.contains("a=Wesley"));
        assert!(rendered.contains("b=Celtics"));
        assert!(rendered.contains("m1=12"));
        // The borrowed view renders identically.
        assert_eq!(t.as_tuple_ref().display(&s), rendered);
    }
}
