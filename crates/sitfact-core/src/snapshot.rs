//! An epoch-published snapshot cell — a vendored, `unsafe`-free stand-in for
//! `arc-swap`.
//!
//! The build environment has no crates.io access and the workspace is
//! `#![forbid(unsafe_code)]`, so a true pointer-swapping `ArcSwap` is off the
//! table. [`SnapshotCell`] gets the property the serving layer actually needs
//! — *readers never wait on an in-flight publish* — with safe parts only:
//!
//! * the cell keeps a small ring of slots, each holding an epoch-tagged
//!   `Arc<T>` behind its own [`RwLock`];
//! * [`SnapshotCell::publish`] writes the **next** ring slot (which no reader
//!   is directed at) and only then advances the shared epoch counter with a
//!   `Release` store;
//! * [`SnapshotCell::load`] reads the epoch with `Acquire`, takes the *read*
//!   lock of the slot that epoch names, and clones the `Arc` out. The tag
//!   stored inside the slot proves which publish wrote the value: if it is
//!   exactly the epoch the reader followed, the read linearizes at that epoch.
//!
//! A reader only ever read-locks a slot whose contents were fully published
//! before the epoch pointed at it, so it can never observe a torn or
//! partially-built value. The write lock it could conceivably contend with
//! belongs to a publish that is lapping the whole ring — `SLOTS` publishes
//! ahead — in which case the tag mismatch makes the reader retry against the
//! fresher epoch instead of returning a mislabelled value. Per reader thread,
//! returned snapshots are therefore monotone in publish order (coherence on
//! the epoch counter), which is exactly the prefix-consistency contract the
//! `TOPK`/`STATS` paths advertise. Publishers are serialized against each
//! other by a dedicated writer mutex that readers never touch.
//!
//! Lock poisoning cannot occur: no user code runs inside any critical section
//! (only `Arc` clone/store), and both paths recover the inner value from a
//! [`std::sync::PoisonError`] anyway rather than panicking.
//!
//! ```
//! use std::sync::Arc;
//! use sitfact_core::snapshot::SnapshotCell;
//!
//! let cell = SnapshotCell::new(Arc::new(vec![1, 2, 3]));
//! assert_eq!(*cell.load(), vec![1, 2, 3]);
//! cell.publish(Arc::new(vec![4, 5]));
//! assert_eq!(*cell.load(), vec![4, 5]);
//! assert_eq!(cell.epoch(), 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Depth of the slot ring. Any value ≥ 2 is correct (a publish never writes
/// the slot the epoch currently points at); the extra depth keeps a reader
/// that loaded the epoch just before several back-to-back publishes from
/// being lapped and having to retry.
const SLOTS: usize = 4;

/// Retry budget for the lap case in [`SnapshotCell::load`]. Reaching it
/// requires the publisher to wrap the entire ring between the reader's epoch
/// load and slot lock on every attempt; the fallback then returns the
/// (fresher-than-requested, still fully published) value it found.
const LOAD_RETRIES: u32 = 64;

/// A single-value cell whose readers always see the most recently published
/// `Arc<T>` without waiting on publishers.
///
/// Cheap to read (`Acquire` load + uncontended read-lock + `Arc::clone`),
/// modest to write (writer mutex + one slot write + `Release` store). The
/// serving layer publishes one snapshot per ingest/window boundary and loads
/// one per `TOPK`/`STATS` request, so the asymmetry is exactly right.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    /// `(epoch-tag, value)` pairs; epoch `e` lives in slot `e % SLOTS`.
    slots: Vec<RwLock<(u64, Arc<T>)>>,
    /// The latest fully-published epoch (= number of publishes so far).
    epoch: AtomicU64,
    /// Serializes publishers.
    writer: Mutex<()>,
}

impl<T> SnapshotCell<T> {
    /// Creates a cell whose readers initially observe `initial` (epoch 0).
    pub fn new(initial: Arc<T>) -> Self {
        let slots = (0..SLOTS)
            .map(|_| RwLock::new((0, Arc::clone(&initial))))
            .collect();
        SnapshotCell {
            slots,
            epoch: AtomicU64::new(0),
            writer: Mutex::new(()),
        }
    }

    /// Returns the most recently published value.
    ///
    /// Never waits on an in-flight publish in the common case: the slot named
    /// by the epoch counter is never the one a concurrent
    /// [`SnapshotCell::publish`] is writing (that one targets the *next*
    /// slot).
    pub fn load(&self) -> Arc<T> {
        let mut attempts = 0;
        loop {
            let e = self.epoch.load(Ordering::Acquire);
            let (tag, value) = {
                let guard = self.slots[(e as usize) % SLOTS]
                    .read()
                    .unwrap_or_else(|poison| poison.into_inner());
                (guard.0, Arc::clone(&guard.1))
            };
            // The slot write for epoch `e` happens before the `Release` store
            // of `e`, so `tag >= e` always; `tag > e` means publishers lapped
            // the ring while we were between the epoch load and the slot
            // lock. Retry against the fresher epoch so the value we return is
            // the one its epoch actually names.
            if tag == e || attempts >= LOAD_RETRIES {
                return value;
            }
            attempts += 1;
        }
    }

    /// Publishes `value` so that all subsequent [`SnapshotCell::load`] calls
    /// observe it. Publishers are serialized; readers are not blocked.
    pub fn publish(&self, value: Arc<T>) {
        let _guard = self
            .writer
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        {
            let mut slot = self.slots[(next as usize) % SLOTS]
                .write()
                .unwrap_or_else(|poison| poison.into_inner());
            *slot = (next, value);
        }
        self.epoch.store(next, Ordering::Release);
    }

    /// Number of publishes so far (0 for a freshly-created cell). Exposed so
    /// property tests can assert prefix consistency: a snapshot loaded later
    /// never belongs to an earlier epoch than one loaded before.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize};

    #[test]
    fn load_returns_initial_then_published() {
        let cell = SnapshotCell::new(Arc::new(10u32));
        assert_eq!(*cell.load(), 10);
        assert_eq!(cell.epoch(), 0);
        cell.publish(Arc::new(11));
        cell.publish(Arc::new(12));
        assert_eq!(*cell.load(), 12);
        assert_eq!(cell.epoch(), 2);
    }

    #[test]
    fn publishes_wrap_the_ring_without_losing_the_latest() {
        let cell = SnapshotCell::new(Arc::new(0usize));
        for i in 1..=(SLOTS * 3 + 1) {
            cell.publish(Arc::new(i));
            assert_eq!(*cell.load(), i);
        }
    }

    /// Concurrent readers during a stream of publishes must only ever observe
    /// monotonically non-decreasing values — i.e. every load returns some
    /// published prefix, never a torn value and never an older snapshot after
    /// a newer one on the same reader thread.
    #[test]
    fn concurrent_readers_observe_monotonic_prefixes() {
        let cell = Arc::new(SnapshotCell::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let progress: Vec<Arc<AtomicUsize>> =
            (0..4).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        let readers: Vec<_> = progress
            .iter()
            .map(|counter| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                let counter = Arc::clone(counter);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut observed = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let seen = *cell.load();
                        assert!(seen >= last, "snapshot went backwards: {seen} < {last}");
                        last = seen;
                        observed += 1;
                        counter.store(observed, Ordering::Relaxed);
                    }
                    observed
                })
            })
            .collect();
        for i in 1..=2_000u64 {
            cell.publish(Arc::new(i));
        }
        // On a single-core box the publish loop above can finish before any
        // reader thread was ever scheduled; don't stop the readers until each
        // has loaded at least one snapshot, or the assertion below is a
        // scheduling coin flip rather than a correctness check.
        while progress.iter().any(|c| c.load(Ordering::Relaxed) == 0) {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            let observed = reader.join().expect("reader thread");
            assert!(observed > 0, "reader never got a snapshot");
        }
        assert_eq!(*cell.load(), 2_000);
        assert_eq!(cell.epoch(), 2_000);
    }

    /// Publishers racing each other must serialize cleanly: after N total
    /// publishes the cell holds the globally last publish (which is the final
    /// publish of whichever writer held the writer lock last) and the epoch
    /// counted every publish exactly once.
    #[test]
    fn concurrent_publishers_serialize() {
        let cell = Arc::new(SnapshotCell::new(Arc::new((0usize, 0u64))));
        let writers: Vec<_> = (0..4usize)
            .map(|w| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for i in 1..=500u64 {
                        cell.publish(Arc::new((w, i)));
                    }
                })
            })
            .collect();
        for writer in writers {
            writer.join().expect("writer thread");
        }
        assert_eq!(cell.epoch(), 4 * 500);
        let (w, i) = *cell.load();
        assert!(w < 4 && i == 500, "final value must be some writer's last");
    }
}
