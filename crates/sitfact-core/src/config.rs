//! Discovery configuration: the `d̂` / `m̂` caps of the paper's experiments.

use crate::error::{Result, SitFactError};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// Limits on which constraint–measure pairs are considered.
///
/// The paper caps the number of *bound* dimension attributes at `d̂`
/// (`max_bound_dims`) and the dimensionality of measure subspaces at `m̂`
/// (`max_measure_dims`) to avoid reporting over-specific, uninteresting facts
/// (Section VI-A). `None` means "no cap".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// `d̂`: maximum number of bound dimension attributes in a constraint.
    pub max_bound_dims: Option<usize>,
    /// `m̂`: maximum number of measure attributes in a subspace.
    pub max_measure_dims: Option<usize>,
    /// Anchor attribute: if set, only facts whose constraint *binds* this
    /// dimension attribute are reported. This is the routing-soundness
    /// restriction of sharded monitors (see [`crate::routing`]): a stream
    /// partitioned on attribute `r` reports exactly the facts of an
    /// unsharded monitor anchored on `r`, because those facts' contexts
    /// never span shards. `None` (the default) reports the full constraint
    /// space.
    pub anchor_dim: Option<usize>,
}

impl DiscoveryConfig {
    /// No caps: every constraint and every non-empty measure subspace is
    /// considered.
    pub fn unrestricted() -> Self {
        Self::default()
    }

    /// Caps constraints at `d_hat` bound attributes and subspaces at `m_hat`
    /// measures.
    pub fn capped(d_hat: usize, m_hat: usize) -> Self {
        DiscoveryConfig {
            max_bound_dims: Some(d_hat),
            max_measure_dims: Some(m_hat),
            anchor_dim: None,
        }
    }

    /// Returns a copy anchored on dimension attribute `dim`: only facts whose
    /// constraint binds `dim` are reported. Required (and auto-applied) by
    /// sharded monitors routing on `dim` — see [`crate::routing`] for why.
    pub fn with_anchor(mut self, dim: usize) -> Self {
        self.anchor_dim = Some(dim);
        self
    }

    /// Whether a fact with this constraint is admitted by the anchor
    /// restriction (always true when no anchor is set).
    #[inline]
    pub fn admits(&self, constraint: &crate::constraint::Constraint) -> bool {
        match self.anchor_dim {
            None => true,
            Some(dim) => constraint.binds(dim),
        }
    }

    /// The effective `d̂` for a schema with `n` dimension attributes.
    pub fn effective_d_hat(&self, schema: &Schema) -> usize {
        self.max_bound_dims
            .unwrap_or(schema.num_dimensions())
            .min(schema.num_dimensions())
    }

    /// The effective `m̂` for a schema with `m` measure attributes.
    pub fn effective_m_hat(&self, schema: &Schema) -> usize {
        self.max_measure_dims
            .unwrap_or(schema.num_measures())
            .min(schema.num_measures())
    }

    /// Validates the configuration against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if let Some(d) = self.max_bound_dims {
            if d == 0 {
                return Err(SitFactError::InvalidConfig(
                    "d̂ must be at least 1 (otherwise only the trivial context exists)".into(),
                ));
            }
            let _ = d; // larger-than-schema caps are simply clamped
        }
        if let Some(m) = self.max_measure_dims {
            if m == 0 {
                return Err(SitFactError::InvalidConfig(
                    "m̂ must be at least 1 (a skyline needs at least one measure)".into(),
                ));
            }
        }
        if let Some(dim) = self.anchor_dim {
            if dim >= schema.num_dimensions() {
                return Err(SitFactError::InvalidConfig(format!(
                    "anchor dimension index {dim} is out of range for schema `{}` with {} dimension attributes",
                    schema.name(),
                    schema.num_dimensions()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::Direction;

    fn schema(d: usize, m: usize) -> Schema {
        let mut b = SchemaBuilder::new("s");
        for i in 0..d {
            b = b.dimension(format!("d{i}"));
        }
        for i in 0..m {
            b = b.measure(format!("m{i}"), Direction::HigherIsBetter);
        }
        b.build().unwrap()
    }

    #[test]
    fn unrestricted_uses_schema_sizes() {
        let s = schema(5, 7);
        let c = DiscoveryConfig::unrestricted();
        assert_eq!(c.effective_d_hat(&s), 5);
        assert_eq!(c.effective_m_hat(&s), 7);
        assert!(c.validate(&s).is_ok());
    }

    #[test]
    fn caps_are_clamped_to_schema() {
        let s = schema(5, 7);
        let c = DiscoveryConfig::capped(4, 3);
        assert_eq!(c.effective_d_hat(&s), 4);
        assert_eq!(c.effective_m_hat(&s), 3);
        let over = DiscoveryConfig::capped(10, 10);
        assert_eq!(over.effective_d_hat(&s), 5);
        assert_eq!(over.effective_m_hat(&s), 7);
    }

    #[test]
    fn zero_caps_are_rejected() {
        let s = schema(2, 2);
        assert!(DiscoveryConfig::capped(0, 1).validate(&s).is_err());
        assert!(DiscoveryConfig::capped(1, 0).validate(&s).is_err());
        assert!(DiscoveryConfig::capped(1, 1).validate(&s).is_ok());
    }

    #[test]
    fn anchor_is_validated_and_filters_constraints() {
        use crate::constraint::Constraint;
        use crate::value::UNBOUND;
        let s = schema(3, 2);
        let anchored = DiscoveryConfig::capped(2, 2).with_anchor(1);
        assert!(anchored.validate(&s).is_ok());
        assert!(DiscoveryConfig::unrestricted()
            .with_anchor(3)
            .validate(&s)
            .is_err());
        // The anchor admits exactly the constraints binding the anchored
        // attribute; without an anchor everything is admitted.
        let binds_anchor = Constraint::from_values(vec![UNBOUND, 4, UNBOUND]);
        let misses_anchor = Constraint::from_values(vec![4, UNBOUND, UNBOUND]);
        assert!(anchored.admits(&binds_anchor));
        assert!(!anchored.admits(&misses_anchor));
        assert!(!anchored.admits(&Constraint::top(3)));
        assert!(DiscoveryConfig::unrestricted().admits(&Constraint::top(3)));
    }
}
