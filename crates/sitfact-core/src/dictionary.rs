//! Per-attribute string dictionary.
//!
//! Dimension attributes are categorical. Every distinct string value of an
//! attribute is interned exactly once and afterwards referenced by a dense
//! [`DimValueId`]; constraints, tuples and skyline stores only ever carry the
//! ids, which keeps comparisons and hashing cheap and keeps the memory
//! footprint of a multi-hundred-thousand-tuple stream small.

use crate::hash::FxHashMap;
use crate::value::DimValueId;

/// An insertion-ordered interner mapping strings to dense [`DimValueId`]s.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    by_name: FxHashMap<String, DimValueId>,
    by_id: Vec<String>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `value`, returning its id. Repeated calls with the same string
    /// return the same id.
    pub fn intern(&mut self, value: &str) -> DimValueId {
        if let Some(&id) = self.by_name.get(value) {
            return id;
        }
        let id = self.by_id.len() as DimValueId;
        self.by_id.push(value.to_owned());
        self.by_name.insert(value.to_owned(), id);
        id
    }

    /// Looks up a previously interned value without interning it.
    pub fn lookup(&self, value: &str) -> Option<DimValueId> {
        self.by_name.get(value).copied()
    }

    /// Resolves an id back to its string, if it exists.
    pub fn resolve(&self, id: DimValueId) -> Option<&str> {
        self.by_id.get(id as usize).map(String::as_str)
    }

    /// Number of distinct values interned so far (the attribute's active
    /// domain size `|dom(d_i)|`).
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates over `(id, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (DimValueId, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (i as DimValueId, s.as_str()))
    }

    /// Approximate heap usage in bytes (used by the memory experiments).
    pub fn approx_heap_bytes(&self) -> usize {
        let strings: usize = self.by_id.iter().map(|s| s.capacity() + 24).sum();
        // Each map entry holds an owned copy of the key plus id and bucket
        // metadata; estimate the copy at the same cost as the vec entry.
        strings * 2 + self.by_id.capacity() * std::mem::size_of::<String>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("Celtics");
        let b = d.intern("Nets");
        let a2 = d.intern("Celtics");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let mut d = Dictionary::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            let id = d.intern(name);
            assert_eq!(id as usize, i);
        }
        assert_eq!(d.resolve(2), Some("c"));
        assert_eq!(d.resolve(99), None);
        assert_eq!(d.lookup("b"), Some(1));
        assert_eq!(d.lookup("zzz"), None);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut d = Dictionary::new();
        d.intern("x");
        d.intern("y");
        d.intern("z");
        let names: Vec<&str> = d.iter().map(|(_, s)| s).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.resolve(0), None);
    }

    #[test]
    fn heap_estimate_grows() {
        let mut d = Dictionary::new();
        let empty = d.approx_heap_bytes();
        for i in 0..100 {
            d.intern(&format!("value-{i}"));
        }
        assert!(d.approx_heap_bytes() > empty);
    }
}
