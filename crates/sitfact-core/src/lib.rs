//! # sitfact-core
//!
//! Core data model for *incremental discovery of prominent situational facts*
//! (Sultana et al., ICDE 2014).
//!
//! A situational fact is a constraint–measure pair `(C, M)` that qualifies a
//! newly appended tuple as a *contextual skyline tuple*: no earlier tuple that
//! satisfies the conjunctive constraint `C` dominates it in the measure
//! subspace `M`.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Schema`], [`Dictionary`], [`Tuple`] — the relation `R(D; M)` with
//!   dictionary-encoded dimension attributes and numeric measure attributes,
//!   each with its own ["better" direction](Direction); the zero-copy
//!   [`TupleRef`] view and the [`TupleView`] trait let the columnar table
//!   hand out rows without materialising them;
//! * [`SubspaceMask`] — measure subspaces `M ⊆ 𝕄` as bitmasks;
//! * [`dominance`] — the dominance relation of skyline analysis, including the
//!   three-way partition of Proposition 4 that lets one full-space comparison
//!   decide dominance in every subspace;
//! * [`Constraint`], [`BoundMask`], [`ConstraintLattice`] — conjunctive
//!   constraints, the subsumption partial order (Definitions 5–8) and the
//!   lattice of tuple-satisfied constraints traversed by the discovery
//!   algorithms;
//! * [`SkylinePair`] and [`DiscoveryConfig`] — the output vocabulary and the
//!   `d̂` / `m̂` caps of the paper's experimental section (plus the `anchor`
//!   restriction sharded monitors rely on);
//! * [`routing`] — the routing-soundness predicates that make a partitioned
//!   stream provably equivalent to an unsharded one;
//! * [`pool`] — a vendored worker thread-pool (no crates.io access here) used
//!   to fan batched windows out across shards, plus the actor-style
//!   [`ActorPool`] whose workers *own* their state outright
//!   (the serving layer routes each tenant's requests to its owning worker);
//! * [`snapshot`] — [`SnapshotCell`], an epoch-published, `unsafe`-free
//!   arc-swap stand-in that lets read-mostly consumers pick up the latest
//!   published value without ever waiting on the publisher;
//! * [`audit`] — the [`Audit`] trait and [`AuditViolation`] record behind the
//!   deep structural validators every data structure exposes under
//!   `cfg(any(test, debug_assertions, feature = "deep-audit"))`.
//!
//! ## Example
//!
//! ```
//! use sitfact_core::{SchemaBuilder, Direction, Tuple, SubspaceMask, dominance};
//!
//! let schema = SchemaBuilder::new("gamelog")
//!     .dimension("player")
//!     .dimension("team")
//!     .measure("points", Direction::HigherIsBetter)
//!     .measure("fouls", Direction::LowerIsBetter)
//!     .build()
//!     .unwrap();
//!
//! let a = Tuple::new(vec![0, 1], vec![20.0, 2.0]);
//! let b = Tuple::new(vec![0, 2], vec![15.0, 4.0]);
//! let full = SubspaceMask::full(schema.num_measures());
//! // `a` scores more points with fewer fouls: it dominates `b`.
//! assert!(dominance::dominates(&a, &b, full, schema.directions()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod constraint;
pub mod dictionary;
pub mod dominance;
pub mod error;
pub mod hash;
pub mod lattice;
pub mod pair;
pub mod pool;
pub mod routing;
pub mod schema;
pub mod snapshot;
pub mod subspace;
pub mod tuple;
pub mod value;

pub use audit::{Audit, AuditViolation};
pub use config::DiscoveryConfig;
pub use constraint::{BoundMask, Constraint};
pub use dictionary::Dictionary;
pub use dominance::{DominanceOrdering, DominancePartition};
pub use error::{Result, SitFactError};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use lattice::ConstraintLattice;
pub use pair::SkylinePair;
pub use pool::{ActorPool, ThreadPool};
pub use schema::{MeasureAttr, Schema, SchemaBuilder};
pub use snapshot::SnapshotCell;
pub use subspace::SubspaceMask;
pub use tuple::{Tuple, TupleId, TupleRef, TupleView};
pub use value::{DimValueId, Direction, UNBOUND};
