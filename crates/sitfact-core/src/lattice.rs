//! The lattice of tuple-satisfied constraints `C^t` (Definition 7) and its
//! traversal orders.
//!
//! For a new tuple `t` over `n` dimension attributes, each constraint of `C^t`
//! binds a subset of the attributes to `t`'s own values, so the lattice is
//! isomorphic to the powerset lattice of `{0, …, n-1}` — here represented by
//! [`BoundMask`]s. An optional `d̂` cap (maximum number of bound attributes,
//! Section VI-A of the paper) truncates the lattice from below; the resulting
//! family is still closed under taking ancestors, which is what the pruning
//! arguments (Propositions 2–3) require.

use crate::constraint::BoundMask;
use std::collections::VecDeque;

/// The (possibly `d̂`-truncated) lattice of tuple-satisfied constraints,
/// parameterised only by the number of dimension attributes and the cap —
/// the actual bound values come from the tuple and are irrelevant to the
/// lattice structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstraintLattice {
    n_dims: usize,
    max_bound: usize,
}

impl ConstraintLattice {
    /// Creates the lattice over `n_dims` attributes where constraints may bind
    /// at most `max_bound` of them. `max_bound` is clamped to `n_dims`.
    pub fn new(n_dims: usize, max_bound: usize) -> Self {
        assert!(n_dims <= 32, "at most 32 dimension attributes supported");
        ConstraintLattice {
            n_dims,
            max_bound: max_bound.min(n_dims),
        }
    }

    /// The unrestricted lattice (`d̂ = |D|`).
    pub fn unrestricted(n_dims: usize) -> Self {
        Self::new(n_dims, n_dims)
    }

    /// Number of dimension attributes.
    #[inline]
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// The `d̂` cap (maximum number of bound attributes).
    #[inline]
    pub fn max_bound(&self) -> usize {
        self.max_bound
    }

    /// Whether `mask` is a member of the lattice.
    #[inline]
    pub fn contains(&self, mask: BoundMask) -> bool {
        mask.0 < (1u32 << self.n_dims) && mask.bound_count() <= self.max_bound
    }

    /// Number of constraints in the lattice: `Σ_{k ≤ d̂} C(n, k)`.
    pub fn len(&self) -> usize {
        (0..=self.max_bound).map(|k| binomial(self.n_dims, k)).sum()
    }

    /// Whether the lattice is empty (it never is — ⊤ always belongs).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Size of a dense flag array indexed by `mask.0` (used by the traversal
    /// algorithms for `pruned` / `visited` bookkeeping).
    #[inline]
    pub fn flag_len(&self) -> usize {
        1usize << self.n_dims
    }

    /// The top element `⊤` (no attribute bound).
    #[inline]
    pub fn top(&self) -> BoundMask {
        BoundMask::TOP
    }

    /// The minimal (most specific) elements. Without a cap there is a single
    /// bottom `⊥(C^t)` binding every attribute; with `d̂ < n` every mask with
    /// exactly `d̂` bound attributes is minimal.
    pub fn bottoms(&self) -> Vec<BoundMask> {
        if self.max_bound == self.n_dims {
            vec![BoundMask::all(self.n_dims)]
        } else {
            self.masks_with_bound(self.max_bound)
        }
    }

    /// All masks with exactly `k` bound attributes.
    pub fn masks_with_bound(&self, k: usize) -> Vec<BoundMask> {
        (0u32..(1u32 << self.n_dims))
            .map(BoundMask)
            .filter(|m| m.bound_count() == k)
            .collect()
    }

    /// Enumerates every member of the lattice in breadth-first top-down order
    /// (by increasing number of bound attributes), starting from `⊤` — the
    /// order of Algorithm 1 of the paper.
    pub fn enumerate_top_down(&self) -> Vec<BoundMask> {
        let mut out = Vec::with_capacity(self.len());
        for k in 0..=self.max_bound {
            out.extend(self.masks_with_bound(k));
        }
        out
    }

    /// Enumerates every member in bottom-up breadth-first order (by decreasing
    /// number of bound attributes).
    pub fn enumerate_bottom_up(&self) -> Vec<BoundMask> {
        let mut out = Vec::with_capacity(self.len());
        for k in (0..=self.max_bound).rev() {
            out.extend(self.masks_with_bound(k));
        }
        out
    }

    /// Algorithm 1 of the paper ("Find `C^t`"): breadth-first queue-based
    /// generation from `⊤`, generating each constraint exactly once by only
    /// binding attributes whose index is lower than the lowest already-bound
    /// attribute. Provided both as a faithful reference and as a useful
    /// generation order; results are identical (as a set) to
    /// [`Self::enumerate_top_down`].
    pub fn enumerate_algorithm1(&self) -> Vec<BoundMask> {
        let mut out = Vec::with_capacity(self.len());
        let mut queue = VecDeque::new();
        queue.push_back(BoundMask::TOP);
        while let Some(mask) = queue.pop_front() {
            out.push(mask);
            if mask.bound_count() >= self.max_bound {
                continue;
            }
            // Bind attributes d_i from the highest index downwards, stopping
            // at the first already-bound attribute — mirrors the `while i > 0
            // and C.d_i = *` loop of Algorithm 1 and guarantees uniqueness.
            let lowest_bound = if mask.is_top() {
                self.n_dims
            } else {
                mask.0.trailing_zeros() as usize
            };
            for i in (0..lowest_bound).rev() {
                queue.push_back(BoundMask(mask.0 | (1 << i)));
            }
        }
        out
    }

    /// Parents of `mask` within the lattice (unbind one attribute).
    pub fn parents(&self, mask: BoundMask) -> Vec<BoundMask> {
        mask.parents().collect()
    }

    /// Children of `mask` within the lattice (bind one more attribute),
    /// honouring the `d̂` cap.
    pub fn children(&self, mask: BoundMask) -> Vec<BoundMask> {
        if mask.bound_count() >= self.max_bound {
            return Vec::new();
        }
        mask.children(self.n_dims).collect()
    }

    /// Proper ancestors of `mask` (every strictly more general member).
    pub fn ancestors(&self, mask: BoundMask) -> Vec<BoundMask> {
        mask.ancestors()
    }

    /// Proper descendants of `mask` within the lattice (every strictly more
    /// specific member respecting the cap).
    pub fn descendants(&self, mask: BoundMask) -> Vec<BoundMask> {
        let free: Vec<usize> = (0..self.n_dims).filter(|&i| !mask.is_bound(i)).collect();
        let mut out = Vec::new();
        // Enumerate non-empty subsets of the free attributes.
        for bits in 1u32..(1u32 << free.len()) {
            let mut m = mask.0;
            for (j, &attr) in free.iter().enumerate() {
                if bits & (1 << j) != 0 {
                    m |= 1 << attr;
                }
            }
            let candidate = BoundMask(m);
            if candidate.bound_count() <= self.max_bound {
                out.push(candidate);
            }
        }
        out
    }

    /// The members of `C^{t,t'} ∩ C^t` given the agreement mask of `t` and
    /// `t'`: all submasks of the agreement respecting the cap. These are the
    /// constraints pruned by Proposition 3 once `t' ≻_M t` is observed.
    pub fn pruned_by_agreement(&self, agreement: BoundMask) -> Vec<BoundMask> {
        agreement
            .submasks()
            .into_iter()
            .filter(|m| m.bound_count() <= self.max_bound)
            .collect()
    }
}

/// Binomial coefficient `C(n, k)` for the small values used here.
fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1usize;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(8, 4), 70);
    }

    #[test]
    fn unrestricted_lattice_has_power_set_size() {
        let l = ConstraintLattice::unrestricted(5);
        assert_eq!(l.len(), 32);
        assert_eq!(l.enumerate_top_down().len(), 32);
        assert_eq!(l.enumerate_bottom_up().len(), 32);
        assert_eq!(l.enumerate_algorithm1().len(), 32);
        assert_eq!(l.bottoms(), vec![BoundMask::all(5)]);
    }

    #[test]
    fn capped_lattice_counts_match_paper_setting() {
        // The case study uses d = 5, d̂ = 3: 1 + 5 + 10 + 10 = 26 constraints.
        let l = ConstraintLattice::new(5, 3);
        assert_eq!(l.len(), 26);
        assert_eq!(l.enumerate_top_down().len(), 26);
        // All minimal elements bind exactly 3 attributes: C(5,3) = 10 of them.
        assert_eq!(l.bottoms().len(), 10);
        assert!(l.bottoms().iter().all(|m| m.bound_count() == 3));
    }

    #[test]
    fn max_bound_is_clamped() {
        let l = ConstraintLattice::new(3, 99);
        assert_eq!(l.max_bound(), 3);
        assert_eq!(l.len(), 8);
    }

    #[test]
    fn membership_and_flags() {
        let l = ConstraintLattice::new(4, 2);
        assert!(l.contains(BoundMask(0b0011)));
        assert!(!l.contains(BoundMask(0b0111))); // 3 bound > cap
        assert!(!l.contains(BoundMask(0b10000))); // attribute out of range
        assert_eq!(l.flag_len(), 16);
        assert!(!l.is_empty());
        assert_eq!(l.n_dims(), 4);
    }

    #[test]
    fn algorithm1_generates_each_constraint_once() {
        for n in 1..=6 {
            for cap in 1..=n {
                let l = ConstraintLattice::new(n, cap);
                let generated = l.enumerate_algorithm1();
                let mut dedup = generated.clone();
                dedup.sort();
                dedup.dedup();
                assert_eq!(
                    generated.len(),
                    dedup.len(),
                    "duplicates for n={n} cap={cap}"
                );
                let mut expected = l.enumerate_top_down();
                expected.sort();
                assert_eq!(dedup, expected, "wrong set for n={n} cap={cap}");
            }
        }
    }

    #[test]
    fn algorithm1_starts_at_top_and_is_breadth_first_compatible() {
        let l = ConstraintLattice::unrestricted(3);
        let order = l.enumerate_algorithm1();
        assert_eq!(order[0], BoundMask::TOP);
        // Every constraint appears no earlier than its parents (weaker than
        // strict BFS but what the traversal algorithms rely on).
        for (pos, &mask) in order.iter().enumerate() {
            for parent in mask.parents() {
                let parent_pos = order.iter().position(|&m| m == parent).unwrap();
                assert!(parent_pos < pos, "parent {parent} after child {mask}");
            }
        }
    }

    #[test]
    fn top_down_orders_by_bound_count() {
        let l = ConstraintLattice::new(4, 3);
        let order = l.enumerate_top_down();
        for pair in order.windows(2) {
            assert!(pair[0].bound_count() <= pair[1].bound_count());
        }
        let order = l.enumerate_bottom_up();
        for pair in order.windows(2) {
            assert!(pair[0].bound_count() >= pair[1].bound_count());
        }
    }

    #[test]
    fn parents_children_are_inverse() {
        let l = ConstraintLattice::new(5, 4);
        for mask in l.enumerate_top_down() {
            for child in l.children(mask) {
                assert!(l.contains(child));
                assert!(l.parents(child).contains(&mask));
                assert_eq!(child.bound_count(), mask.bound_count() + 1);
            }
            for parent in l.parents(mask) {
                assert!(l.children(parent).contains(&mask));
            }
        }
    }

    #[test]
    fn children_respect_cap() {
        let l = ConstraintLattice::new(5, 2);
        let at_cap = BoundMask(0b00011);
        assert!(l.children(at_cap).is_empty());
        let below_cap = BoundMask(0b00001);
        assert_eq!(l.children(below_cap).len(), 4);
    }

    #[test]
    fn descendants_and_ancestors() {
        let l = ConstraintLattice::unrestricted(4);
        let mask = BoundMask(0b0011);
        let desc = l.descendants(mask);
        assert_eq!(desc.len(), 3); // 0111, 1011, 1111
        assert!(desc.iter().all(|d| mask.is_submask_of(*d) && *d != mask));
        let anc = l.ancestors(mask);
        assert_eq!(anc.len(), 3); // 0000, 0001, 0010
                                  // With a cap, deep descendants disappear.
        let capped = ConstraintLattice::new(4, 3);
        assert_eq!(capped.descendants(mask).len(), 2);
    }

    #[test]
    fn pruned_by_agreement_matches_submasks() {
        let l = ConstraintLattice::unrestricted(3);
        // Agreement on attributes {1, 2} (running example t4/t5): the pruned
        // set is ⊤, {1}, {2}, {1,2} — i.e. Fig. 2's solid-line lattice.
        let pruned = l.pruned_by_agreement(BoundMask(0b110));
        assert_eq!(pruned.len(), 4);
        assert!(pruned.contains(&BoundMask::TOP));
        assert!(pruned.contains(&BoundMask(0b110)));
        // A cap removes over-specific members.
        let capped = ConstraintLattice::new(3, 1);
        assert_eq!(capped.pruned_by_agreement(BoundMask(0b110)).len(), 3);
    }

    #[test]
    fn example_5_neighbourhood() {
        // Fig. 1: C = ⟨a1, *, c1⟩ over 3 attributes has 2 parents, 1 child,
        // 3 ancestors (incl. ⊤) and 1 descendant.
        let l = ConstraintLattice::unrestricted(3);
        let c = BoundMask(0b101);
        assert_eq!(l.parents(c).len(), 2);
        assert_eq!(l.children(c).len(), 1);
        assert_eq!(l.ancestors(c).len(), 3);
        assert_eq!(l.descendants(c).len(), 1);
    }
}
