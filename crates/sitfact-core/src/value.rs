//! Primitive value types: dimension value identifiers and measure directions.

use serde::{Deserialize, Serialize};

/// Identifier of a dimension value inside its attribute's [`Dictionary`](crate::Dictionary).
///
/// Dimension attributes are categorical (player names, team codes, months…);
/// every distinct string is interned once and referenced by this id.
pub type DimValueId = u32;

/// Sentinel id used inside [`Constraint`](crate::Constraint) vectors for
/// *unbound* dimension attributes (the `*` of the paper's notation).
pub const UNBOUND: DimValueId = u32::MAX;

/// Preference direction of a measure attribute.
///
/// The paper's Definition 2 allows "better than" to mean either "larger than"
/// or "smaller than" per attribute (e.g. points vs. fouls in a box score).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Larger values dominate smaller values (points, rebounds, likes, …).
    HigherIsBetter,
    /// Smaller values dominate larger values (fouls, turnovers, latency, …).
    LowerIsBetter,
}

impl Direction {
    /// Returns `true` when `a` is strictly better than `b` under this
    /// direction.
    #[inline]
    pub fn better(self, a: f64, b: f64) -> bool {
        match self {
            Direction::HigherIsBetter => a > b,
            Direction::LowerIsBetter => a < b,
        }
    }

    /// Returns `true` when `a` is better than or equal to `b`.
    #[inline]
    pub fn better_or_equal(self, a: f64, b: f64) -> bool {
        match self {
            Direction::HigherIsBetter => a >= b,
            Direction::LowerIsBetter => a <= b,
        }
    }

    /// Maps a raw measure to a canonical "higher is better" score. Used by the
    /// k-d tree so its one-sided range query can always ask for `>=`.
    #[inline]
    pub fn canonical(self, value: f64) -> f64 {
        match self {
            Direction::HigherIsBetter => value,
            Direction::LowerIsBetter => -value,
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn flipped(self) -> Direction {
        match self {
            Direction::HigherIsBetter => Direction::LowerIsBetter,
            Direction::LowerIsBetter => Direction::HigherIsBetter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_is_better_semantics() {
        let d = Direction::HigherIsBetter;
        assert!(d.better(3.0, 2.0));
        assert!(!d.better(2.0, 2.0));
        assert!(d.better_or_equal(2.0, 2.0));
        assert!(!d.better_or_equal(1.0, 2.0));
        assert_eq!(d.canonical(5.0), 5.0);
    }

    #[test]
    fn lower_is_better_semantics() {
        let d = Direction::LowerIsBetter;
        assert!(d.better(1.0, 2.0));
        assert!(!d.better(2.0, 2.0));
        assert!(d.better_or_equal(2.0, 2.0));
        assert!(!d.better_or_equal(3.0, 2.0));
        assert_eq!(d.canonical(5.0), -5.0);
    }

    #[test]
    fn flipping_is_involutive() {
        assert_eq!(
            Direction::HigherIsBetter.flipped().flipped(),
            Direction::HigherIsBetter
        );
        assert_eq!(
            Direction::HigherIsBetter.flipped(),
            Direction::LowerIsBetter
        );
    }

    #[test]
    fn unbound_sentinel_is_distinct_from_real_ids() {
        assert_ne!(UNBOUND, 0);
        assert_eq!(UNBOUND, u32::MAX);
    }
}
