//! Measure subspaces `M ⊆ 𝕄` represented as bitmasks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A measure subspace: bit `i` is set iff measure attribute `i` belongs to the
/// subspace.
///
/// The paper considers every non-empty subset of the measure space (optionally
/// capped at `m̂` attributes); with at most
/// [`MAX_MEASURES`](crate::schema::MAX_MEASURES) measures a `u32` mask is
/// ample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubspaceMask(pub u32);

impl SubspaceMask {
    /// The empty subspace (not a valid skyline subspace, but useful as an
    /// identity for set operations).
    pub const EMPTY: SubspaceMask = SubspaceMask(0);

    /// The full measure space over `m` attributes.
    #[inline]
    pub fn full(m: usize) -> Self {
        debug_assert!(m <= 32);
        if m == 32 {
            SubspaceMask(u32::MAX)
        } else {
            SubspaceMask((1u32 << m) - 1)
        }
    }

    /// A singleton subspace containing only measure `i`.
    #[inline]
    pub fn singleton(i: usize) -> Self {
        SubspaceMask(1 << i)
    }

    /// Builds a subspace from measure attribute indexes.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut mask = 0u32;
        for i in indices {
            mask |= 1 << i;
        }
        SubspaceMask(mask)
    }

    /// Number of measure attributes in the subspace (`|M|`).
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the subspace is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether measure attribute `i` belongs to the subspace.
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Whether `self` is a subset of (or equal to) `other`.
    #[inline]
    pub fn is_subset_of(self, other: SubspaceMask) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self` is a proper subset of `other`.
    #[inline]
    pub fn is_proper_subset_of(self, other: SubspaceMask) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(self, other: SubspaceMask) -> SubspaceMask {
        SubspaceMask(self.0 & other.0)
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: SubspaceMask) -> SubspaceMask {
        SubspaceMask(self.0 | other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub fn difference(self, other: SubspaceMask) -> SubspaceMask {
        SubspaceMask(self.0 & !other.0)
    }

    /// Iterates over the measure attribute indexes contained in the subspace,
    /// in increasing order.
    pub fn indices(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Enumerates every non-empty subspace of the `m`-attribute measure space
    /// whose cardinality is at most `max_len`, in ascending mask order.
    ///
    /// This is the iteration order used by the per-subspace (non-shared)
    /// algorithms; the shared variants iterate the full space first and then
    /// the proper subspaces.
    pub fn enumerate(m: usize, max_len: usize) -> Vec<SubspaceMask> {
        let full = Self::full(m).0;
        (1..=full)
            .map(SubspaceMask)
            .filter(|s| s.len() <= max_len)
            .collect()
    }

    /// Enumerates every non-empty **proper** subspace of `full` with
    /// cardinality at most `max_len`.
    pub fn enumerate_proper(m: usize, max_len: usize) -> Vec<SubspaceMask> {
        let full = Self::full(m);
        Self::enumerate(m, max_len)
            .into_iter()
            .filter(|&s| s != full)
            .collect()
    }

    /// Enumerates all supersets of `self` within an `m`-attribute measure
    /// space (including `self` itself).
    pub fn supersets(self, m: usize) -> Vec<SubspaceMask> {
        let full = Self::full(m).0;
        let free = full & !self.0;
        // Enumerate subsets of the free bits and OR them in.
        let mut out = Vec::with_capacity(1 << free.count_ones());
        let mut sub = free;
        loop {
            out.push(SubspaceMask(self.0 | sub));
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & free;
        }
        out.sort_unstable();
        out
    }

    /// Enumerates all non-empty subsets of `self` (including `self`).
    pub fn subsets(self) -> Vec<SubspaceMask> {
        let mut out = Vec::new();
        let mut sub = self.0;
        while sub != 0 {
            out.push(SubspaceMask(sub));
            sub = (sub - 1) & self.0;
        }
        out.sort_unstable();
        out
    }

    /// Renders the subspace using the measure names of `names`.
    pub fn display(self, names: &[String]) -> String {
        let parts: Vec<&str> = self
            .indices()
            .filter_map(|i| names.get(i).map(String::as_str))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Display for SubspaceMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{:b}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_singleton() {
        assert_eq!(SubspaceMask::full(3).0, 0b111);
        assert_eq!(SubspaceMask::singleton(2).0, 0b100);
        assert_eq!(SubspaceMask::full(3).len(), 3);
        assert!(SubspaceMask::EMPTY.is_empty());
    }

    #[test]
    fn from_indices_and_contains() {
        let s = SubspaceMask::from_indices([0, 2]);
        assert!(s.contains(0));
        assert!(!s.contains(1));
        assert!(s.contains(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.indices().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn subset_relations() {
        let a = SubspaceMask(0b011);
        let b = SubspaceMask(0b111);
        assert!(a.is_subset_of(b));
        assert!(a.is_proper_subset_of(b));
        assert!(!b.is_subset_of(a));
        assert!(a.is_subset_of(a));
        assert!(!a.is_proper_subset_of(a));
    }

    #[test]
    fn set_operations() {
        let a = SubspaceMask(0b011);
        let b = SubspaceMask(0b110);
        assert_eq!(a.intersect(b).0, 0b010);
        assert_eq!(a.union(b).0, 0b111);
        assert_eq!(a.difference(b).0, 0b001);
    }

    #[test]
    fn enumerate_counts() {
        // All non-empty subsets of a 3-attribute space: 2^3 - 1 = 7.
        assert_eq!(SubspaceMask::enumerate(3, 3).len(), 7);
        // Capped at 2 attributes: C(3,1) + C(3,2) = 6.
        assert_eq!(SubspaceMask::enumerate(3, 2).len(), 6);
        // Proper subspaces exclude the full space.
        assert_eq!(SubspaceMask::enumerate_proper(3, 3).len(), 6);
        // The paper's NBA configuration: m = 7 -> 127 subspaces.
        assert_eq!(SubspaceMask::enumerate(7, 7).len(), 127);
    }

    #[test]
    fn enumerate_is_sorted_and_unique() {
        let all = SubspaceMask::enumerate(4, 4);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(all, sorted);
    }

    #[test]
    fn supersets_and_subsets() {
        let s = SubspaceMask(0b010);
        let sup = s.supersets(3);
        assert_eq!(sup.len(), 4); // 010, 011, 110, 111
        assert!(sup.contains(&SubspaceMask(0b111)));
        assert!(sup.iter().all(|x| s.is_subset_of(*x)));

        let t = SubspaceMask(0b101);
        let sub = t.subsets();
        assert_eq!(sub.len(), 3); // 001, 100, 101
        assert!(sub.iter().all(|x| x.is_subset_of(t) && !x.is_empty()));
    }

    #[test]
    fn display_uses_measure_names() {
        let names = vec!["points".to_string(), "assists".to_string()];
        assert_eq!(SubspaceMask(0b11).display(&names), "{points, assists}");
        assert_eq!(SubspaceMask(0b10).display(&names), "{assists}");
    }

    #[test]
    fn full_32_does_not_overflow() {
        assert_eq!(SubspaceMask::full(32).0, u32::MAX);
    }
}
