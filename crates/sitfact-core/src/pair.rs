//! The output vocabulary of discovery: constraint–measure pairs.

use crate::constraint::Constraint;
use crate::schema::Schema;
use crate::subspace::SubspaceMask;
use serde::{Deserialize, Serialize};

/// A constraint–measure pair `(C, M)` that qualifies a tuple as a contextual
/// skyline tuple — one element of the paper's result set `S_t`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SkylinePair {
    /// The conjunctive constraint defining the context `σ_C(R)`.
    pub constraint: Constraint,
    /// The measure subspace in which the tuple is undominated.
    pub subspace: SubspaceMask,
}

impl SkylinePair {
    /// Creates a new pair.
    pub fn new(constraint: Constraint, subspace: SubspaceMask) -> Self {
        SkylinePair {
            constraint,
            subspace,
        }
    }

    /// Human-readable rendering, e.g.
    /// `(month=Feb ∧ team=Celtics, {points, rebounds})`.
    pub fn display(&self, schema: &Schema) -> String {
        let measures: Vec<String> = schema.measures().iter().map(|m| m.name.clone()).collect();
        format!(
            "({}, {})",
            self.constraint.display(schema),
            self.subspace.display(&measures)
        )
    }
}

/// Canonical ordering key used by tests and reports so result sets can be
/// compared across algorithms: sort by constraint values, then subspace.
pub fn canonical_sort(pairs: &mut [SkylinePair]) {
    pairs.sort_by(|a, b| {
        a.constraint
            .values()
            .cmp(b.constraint.values())
            .then(a.subspace.cmp(&b.subspace))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::{Direction, UNBOUND};

    #[test]
    fn display_renders_both_parts() {
        let mut schema = SchemaBuilder::new("t")
            .dimension("team")
            .dimension("month")
            .measure("points", Direction::HigherIsBetter)
            .measure("assists", Direction::HigherIsBetter)
            .build()
            .unwrap();
        schema.intern_dims(&["Celtics", "Feb"]).unwrap();
        let pair = SkylinePair::new(
            Constraint::from_values(vec![0, UNBOUND]),
            SubspaceMask::from_indices([0]),
        );
        let shown = pair.display(&schema);
        assert!(shown.contains("team=Celtics"));
        assert!(shown.contains("{points}"));
    }

    #[test]
    fn canonical_sort_is_deterministic() {
        let a = SkylinePair::new(
            Constraint::from_values(vec![1, UNBOUND]),
            SubspaceMask(0b01),
        );
        let b = SkylinePair::new(
            Constraint::from_values(vec![1, UNBOUND]),
            SubspaceMask(0b10),
        );
        let c = SkylinePair::new(Constraint::from_values(vec![0, 3]), SubspaceMask(0b01));
        let mut v1 = vec![b.clone(), a.clone(), c.clone()];
        let mut v2 = vec![c.clone(), b.clone(), a.clone()];
        canonical_sort(&mut v1);
        canonical_sort(&mut v2);
        assert_eq!(v1, v2);
        assert_eq!(v1[0], c);
    }

    #[test]
    fn pairs_hash_and_compare() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SkylinePair::new(Constraint::top(2), SubspaceMask(1)));
        set.insert(SkylinePair::new(Constraint::top(2), SubspaceMask(1)));
        assert_eq!(set.len(), 1);
    }
}
