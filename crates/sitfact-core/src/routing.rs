//! Routing soundness for partitioned (sharded) streams.
//!
//! A sharded monitor partitions the arrival stream by one dimension attribute
//! — the *routing* attribute `r` — so that every tuple with the same value of
//! `r` lands on the same shard. A shard then only ever sees a subset of the
//! global history, which changes the answer for any constraint whose context
//! spans shards. Sharding is **sound** (the merged per-arrival reports equal
//! an unsharded monitor's) exactly when every emitted fact's constraint
//! *binds* the routing attribute:
//!
//! * a constraint that binds `r` to the arriving tuple's own value `v` has a
//!   context `σ_C(R)` entirely contained in `v`'s shard — the shard sees the
//!   whole context, so discovery, context cardinalities and skyline
//!   cardinalities all agree with the unsharded monitor;
//! * a constraint that binds `r` to a *different* value has an empty
//!   intersection with the tuple's own constraint family `C^t` and can never
//!   be emitted for the tuple in the first place ([`conflicts_with_tuple`]
//!   exists to assert this invariant);
//! * a constraint that leaves `r` unbound (including the top constraint `⊤`)
//!   has a context spread across shards, and its facts are therefore
//!   excluded from the constraint space by the `anchor`
//!   ([`crate::DiscoveryConfig::with_anchor`]) on *both* the sharded and the
//!   unsharded side — which is what makes the two provably identical.
//!
//! [`ensure_routable`] is the single entry point a sharded driver calls to
//! turn a user-supplied [`DiscoveryConfig`] into one that is consistent with
//! a routing attribute (or reject it).

use crate::config::DiscoveryConfig;
use crate::constraint::Constraint;
use crate::error::{Result, SitFactError};
use crate::schema::Schema;
use crate::value::DimValueId;

/// Whether `constraint` is sound to evaluate inside the shard that owns
/// `routing_value` on the routing attribute `routing_dim`: it must bind the
/// routing attribute to exactly that value.
pub fn is_routable(constraint: &Constraint, routing_dim: usize, routing_value: DimValueId) -> bool {
    constraint.bound_value(routing_dim) == Some(routing_value)
}

/// Whether `constraint` binds the routing attribute at all — the
/// routing-soundness restriction on a constraint template. Constraints that
/// fail this (the routing attribute is left `*`, e.g. `⊤`) have contexts that
/// span shards and must be excluded from a sharded monitor's constraint
/// space.
pub fn binds_routing(constraint: &Constraint, routing_dim: usize) -> bool {
    constraint.binds(routing_dim)
}

/// Whether `constraint` binds the routing attribute to a value *different*
/// from the given tuple's routing value. Such a constraint cannot belong to
/// the tuple's satisfied family `C^t`, so a discovery algorithm can never
/// emit it for the tuple — sharded drivers `debug_assert` this to catch
/// routing bugs early.
pub fn conflicts_with_tuple(
    constraint: &Constraint,
    routing_dim: usize,
    tuple_routing_value: DimValueId,
) -> bool {
    matches!(constraint.bound_value(routing_dim), Some(v) if v != tuple_routing_value)
}

/// Validates that `config` is consistent with routing on `routing_dim` and
/// returns the anchored configuration a sharded driver must run with (on
/// every shard **and** on the unsharded reference it is compared against).
///
/// * `routing_dim` must name a dimension attribute of `schema`;
/// * if the config already carries an anchor it must be the routing
///   attribute — anchoring on a different attribute would emit facts whose
///   contexts span shards;
/// * a config without an anchor is anchored on `routing_dim` (the common
///   case: "shard by team" implies "facts must bind team");
/// * the anchor must survive the `d̂` cap: `d̂ ≥ 1` always holds
///   ([`DiscoveryConfig::validate`] rejects `d̂ = 0`), and binding the anchor
///   consumes one of the `d̂` bound attributes.
pub fn ensure_routable(
    config: DiscoveryConfig,
    schema: &Schema,
    routing_dim: usize,
) -> Result<DiscoveryConfig> {
    if routing_dim >= schema.num_dimensions() {
        return Err(SitFactError::InvalidConfig(format!(
            "routing dimension index {routing_dim} is out of range for schema `{}` with {} dimension attributes",
            schema.name(),
            schema.num_dimensions()
        )));
    }
    match config.anchor_dim {
        Some(anchor) if anchor != routing_dim => Err(SitFactError::InvalidConfig(format!(
            "discovery config is anchored on dimension {anchor} but the stream is routed on \
             dimension {routing_dim}; facts anchored off the routing attribute have contexts \
             that span shards, so sharding would change the reports"
        ))),
        _ => {
            let anchored = config.with_anchor(routing_dim);
            anchored.validate(schema)?;
            Ok(anchored)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::{Direction, UNBOUND};

    fn schema() -> Schema {
        SchemaBuilder::new("s")
            .dimension("player")
            .dimension("team")
            .measure("points", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    #[test]
    fn routable_iff_bound_to_the_owning_value() {
        let c = Constraint::from_values(vec![UNBOUND, 7]);
        assert!(is_routable(&c, 1, 7));
        assert!(!is_routable(&c, 1, 8)); // bound, but to another shard's value
        assert!(!is_routable(&c, 0, 7)); // routing attribute unbound
        assert!(binds_routing(&c, 1));
        assert!(!binds_routing(&c, 0));
        assert!(!binds_routing(&Constraint::top(2), 1));
    }

    #[test]
    fn conflict_means_bound_elsewhere() {
        let c = Constraint::from_values(vec![UNBOUND, 7]);
        assert!(conflicts_with_tuple(&c, 1, 8));
        assert!(!conflicts_with_tuple(&c, 1, 7));
        // Unbound routing attribute is unsound but not a *conflict*.
        assert!(!conflicts_with_tuple(&Constraint::top(2), 1, 8));
    }

    #[test]
    fn ensure_routable_anchors_unanchored_configs() {
        let schema = schema();
        let anchored = ensure_routable(DiscoveryConfig::capped(2, 1), &schema, 1).unwrap();
        assert_eq!(anchored.anchor_dim, Some(1));
        // Idempotent when already anchored on the routing attribute.
        assert_eq!(ensure_routable(anchored, &schema, 1).unwrap(), anchored);
    }

    #[test]
    fn ensure_routable_rejects_mismatches() {
        let schema = schema();
        let anchored_elsewhere = DiscoveryConfig::unrestricted().with_anchor(0);
        assert!(ensure_routable(anchored_elsewhere, &schema, 1).is_err());
        // Routing attribute out of range.
        assert!(ensure_routable(DiscoveryConfig::unrestricted(), &schema, 2).is_err());
    }
}
