//! Relation schema `R(D; M)`: dimension attributes, measure attributes and
//! their preference directions.

use crate::dictionary::Dictionary;
use crate::error::{Result, SitFactError};
use crate::value::Direction;
use serde::{Deserialize, Serialize};

/// Maximum number of dimension attributes supported by the bitmask-based
/// constraint lattice ([`BoundMask`](crate::BoundMask) is a `u32`, and flag
/// arrays are allocated with `2^|D|` entries).
pub const MAX_DIMENSIONS: usize = 20;

/// Maximum number of measure attributes supported by
/// [`SubspaceMask`](crate::SubspaceMask).
pub const MAX_MEASURES: usize = 20;

/// A measure attribute: a name plus its preference direction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasureAttr {
    /// Attribute name (unique within the schema).
    pub name: String,
    /// Whether larger or smaller values dominate.
    pub direction: Direction,
}

/// Schema of the append-only relation: named dimension attributes (each with
/// its own string dictionary) and named, directed measure attributes.
#[derive(Debug, Clone)]
pub struct Schema {
    name: String,
    dimensions: Vec<String>,
    measures: Vec<MeasureAttr>,
    directions: Vec<Direction>,
    dictionaries: Vec<Dictionary>,
}

impl Schema {
    /// Human-readable name of the relation (e.g. `"nba_gamelog"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dimension attributes `|D|`.
    pub fn num_dimensions(&self) -> usize {
        self.dimensions.len()
    }

    /// Number of measure attributes `|M|`.
    pub fn num_measures(&self) -> usize {
        self.measures.len()
    }

    /// Names of the dimension attributes, in declaration order.
    pub fn dimension_names(&self) -> &[String] {
        &self.dimensions
    }

    /// The measure attributes, in declaration order.
    pub fn measures(&self) -> &[MeasureAttr] {
        &self.measures
    }

    /// Preference directions of the measures, in declaration order. This slice
    /// is what the dominance routines consume.
    pub fn directions(&self) -> &[Direction] {
        &self.directions
    }

    /// Index of a dimension attribute by name.
    pub fn dimension_index(&self, name: &str) -> Option<usize> {
        self.dimensions.iter().position(|d| d == name)
    }

    /// Index of a measure attribute by name.
    pub fn measure_index(&self, name: &str) -> Option<usize> {
        self.measures.iter().position(|m| m.name == name)
    }

    /// The dictionary of dimension `dim` (panics if out of range).
    pub fn dictionary(&self, dim: usize) -> &Dictionary {
        &self.dictionaries[dim]
    }

    /// Mutable access to the dictionary of dimension `dim`, used while
    /// ingesting raw string records.
    pub fn dictionary_mut(&mut self, dim: usize) -> &mut Dictionary {
        &mut self.dictionaries[dim]
    }

    /// Interns a full row of dimension strings, returning their ids.
    pub fn intern_dims(&mut self, values: &[&str]) -> Result<Vec<u32>> {
        if values.len() != self.num_dimensions() {
            return Err(SitFactError::InvalidTuple(format!(
                "expected {} dimension values, got {}",
                self.num_dimensions(),
                values.len()
            )));
        }
        Ok(values
            .iter()
            .enumerate()
            .map(|(i, v)| self.dictionaries[i].intern(v))
            .collect())
    }

    /// Resolves a dimension value id back to its string.
    pub fn resolve_dim(&self, dim: usize, id: u32) -> Option<&str> {
        self.dictionaries.get(dim).and_then(|d| d.resolve(id))
    }

    /// Approximate heap bytes held by the schema's dictionaries.
    pub fn approx_heap_bytes(&self) -> usize {
        self.dictionaries
            .iter()
            .map(Dictionary::approx_heap_bytes)
            .sum()
    }
}

/// Builder for [`Schema`].
///
/// ```
/// use sitfact_core::{SchemaBuilder, Direction};
/// let schema = SchemaBuilder::new("gamelog")
///     .dimension("player")
///     .dimension("team")
///     .measure("points", Direction::HigherIsBetter)
///     .measure("turnovers", Direction::LowerIsBetter)
///     .build()
///     .unwrap();
/// assert_eq!(schema.num_dimensions(), 2);
/// assert_eq!(schema.num_measures(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SchemaBuilder {
    name: String,
    dimensions: Vec<String>,
    measures: Vec<MeasureAttr>,
}

impl SchemaBuilder {
    /// Starts a new schema with the given relation name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            dimensions: Vec::new(),
            measures: Vec::new(),
        }
    }

    /// Adds a dimension attribute.
    pub fn dimension(mut self, name: impl Into<String>) -> Self {
        self.dimensions.push(name.into());
        self
    }

    /// Adds several dimension attributes at once.
    pub fn dimensions<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.dimensions.extend(names.into_iter().map(Into::into));
        self
    }

    /// Adds a measure attribute with its preference direction.
    pub fn measure(mut self, name: impl Into<String>, direction: Direction) -> Self {
        self.measures.push(MeasureAttr {
            name: name.into(),
            direction,
        });
        self
    }

    /// Validates the declaration and produces the [`Schema`].
    pub fn build(self) -> Result<Schema> {
        if self.dimensions.is_empty() {
            return Err(SitFactError::InvalidSchema(
                "at least one dimension attribute is required".into(),
            ));
        }
        if self.measures.is_empty() {
            return Err(SitFactError::InvalidSchema(
                "at least one measure attribute is required".into(),
            ));
        }
        if self.dimensions.len() > MAX_DIMENSIONS {
            return Err(SitFactError::InvalidSchema(format!(
                "{} dimension attributes exceed the supported maximum of {}",
                self.dimensions.len(),
                MAX_DIMENSIONS
            )));
        }
        if self.measures.len() > MAX_MEASURES {
            return Err(SitFactError::InvalidSchema(format!(
                "{} measure attributes exceed the supported maximum of {}",
                self.measures.len(),
                MAX_MEASURES
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for name in self
            .dimensions
            .iter()
            .chain(self.measures.iter().map(|m| &m.name))
        {
            if !seen.insert(name.as_str()) {
                return Err(SitFactError::InvalidSchema(format!(
                    "duplicate attribute name `{name}`"
                )));
            }
        }
        let directions = self.measures.iter().map(|m| m.direction).collect();
        let dictionaries = self.dimensions.iter().map(|_| Dictionary::new()).collect();
        Ok(Schema {
            name: self.name,
            dimensions: self.dimensions,
            measures: self.measures,
            directions,
            dictionaries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        SchemaBuilder::new("test")
            .dimension("player")
            .dimension("team")
            .dimension("season")
            .measure("points", Direction::HigherIsBetter)
            .measure("fouls", Direction::LowerIsBetter)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let s = sample();
        assert_eq!(s.name(), "test");
        assert_eq!(s.num_dimensions(), 3);
        assert_eq!(s.num_measures(), 2);
        assert_eq!(s.dimension_index("team"), Some(1));
        assert_eq!(s.dimension_index("nope"), None);
        assert_eq!(s.measure_index("fouls"), Some(1));
        assert_eq!(s.directions()[1], Direction::LowerIsBetter);
    }

    #[test]
    fn rejects_empty_schemas() {
        assert!(SchemaBuilder::new("x").build().is_err());
        assert!(SchemaBuilder::new("x").dimension("d").build().is_err());
        assert!(SchemaBuilder::new("x")
            .measure("m", Direction::HigherIsBetter)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = SchemaBuilder::new("x")
            .dimension("a")
            .dimension("a")
            .measure("m", Direction::HigherIsBetter)
            .build()
            .unwrap_err();
        assert!(matches!(err, SitFactError::InvalidSchema(_)));
        // Duplicate across dimension/measure namespaces is also rejected.
        let err = SchemaBuilder::new("x")
            .dimension("a")
            .measure("a", Direction::HigherIsBetter)
            .build()
            .unwrap_err();
        assert!(matches!(err, SitFactError::InvalidSchema(_)));
    }

    #[test]
    fn rejects_too_many_attributes() {
        let mut b = SchemaBuilder::new("wide");
        for i in 0..(MAX_DIMENSIONS + 1) {
            b = b.dimension(format!("d{i}"));
        }
        let err = b
            .measure("m", Direction::HigherIsBetter)
            .build()
            .unwrap_err();
        assert!(matches!(err, SitFactError::InvalidSchema(_)));
    }

    #[test]
    fn interning_round_trips() {
        let mut s = sample();
        let ids = s.intern_dims(&["Wesley", "Celtics", "1995-96"]).unwrap();
        assert_eq!(ids.len(), 3);
        assert_eq!(s.resolve_dim(0, ids[0]), Some("Wesley"));
        assert_eq!(s.resolve_dim(1, ids[1]), Some("Celtics"));
        // Re-interning yields identical ids.
        let ids2 = s.intern_dims(&["Wesley", "Celtics", "1995-96"]).unwrap();
        assert_eq!(ids, ids2);
    }

    #[test]
    fn interning_checks_arity() {
        let mut s = sample();
        assert!(s.intern_dims(&["only", "two"]).is_err());
    }

    #[test]
    fn dimensions_bulk_helper() {
        let s = SchemaBuilder::new("bulk")
            .dimensions(["a", "b", "c"])
            .measure("m", Direction::HigherIsBetter)
            .build()
            .unwrap();
        assert_eq!(s.num_dimensions(), 3);
    }
}
