//! Ranked situational facts and per-arrival reports.

use serde::{Deserialize, Serialize};
use sitfact_core::{Schema, SkylinePair, TupleId};

/// A situational fact together with the quantities behind its prominence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedFact {
    /// The constraint–measure pair.
    pub pair: SkylinePair,
    /// `|σ_C(R)|`: number of tuples in the context (including the new tuple).
    pub context_size: u64,
    /// `|λ_M(σ_C(R))|`: number of contextual skyline tuples.
    pub skyline_size: u64,
}

impl RankedFact {
    /// The canonical ranking order of a report's facts: descending
    /// prominence, ties broken by constraint values then subspace.
    ///
    /// This is a *total* order on distinct facts (no two facts share both
    /// constraint and subspace), so a ranked report is fully determined by
    /// its fact **set** — independent of the order the discovery algorithm
    /// emitted the pairs in. That determinism is what lets a sharded monitor
    /// (whose shards prune in a different order than an unsharded monitor)
    /// produce byte-identical reports, `keep_top` truncation included.
    pub fn ranking_cmp(a: &RankedFact, b: &RankedFact) -> std::cmp::Ordering {
        b.prominence()
            .partial_cmp(&a.prominence())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                a.pair
                    .constraint
                    .values()
                    .cmp(b.pair.constraint.values())
                    .then(a.pair.subspace.cmp(&b.pair.subspace))
            })
    }

    /// The prominence value `|σ_C(R)| / |λ_M(σ_C(R))|` (≥ 1 whenever the
    /// context is non-empty; larger is rarer and therefore more newsworthy).
    pub fn prominence(&self) -> f64 {
        if self.skyline_size == 0 {
            // Cannot happen for facts pertinent to the new tuple (it is itself
            // a skyline tuple), but keep the ratio well defined.
            return 0.0;
        }
        self.context_size as f64 / self.skyline_size as f64
    }

    /// Human-readable rendering including the prominence value.
    pub fn display(&self, schema: &Schema) -> String {
        format!(
            "{} [prominence {:.1} = {}/{}]",
            self.pair.display(schema),
            self.prominence(),
            self.context_size,
            self.skyline_size
        )
    }
}

/// Everything discovered about one arriving tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalReport {
    /// Id assigned to the tuple in the append-only table.
    pub tuple_id: TupleId,
    /// Every fact of `S_t`, ranked by descending prominence.
    pub facts: Vec<RankedFact>,
    /// Number of facts whose prominence equals the maximum **and** clears the
    /// monitor's threshold `τ` — the paper's "prominent facts pertinent to t".
    /// They are the first `prominent_count` entries of `facts`.
    pub prominent_count: usize,
}

impl ArrivalReport {
    /// The prominent facts (highest prominence, above threshold).
    pub fn prominent(&self) -> &[RankedFact] {
        &self.facts[..self.prominent_count]
    }

    /// The top-k facts by prominence (fewer if the arrival produced fewer).
    pub fn top_k(&self, k: usize) -> &[RankedFact] {
        &self.facts[..k.min(self.facts.len())]
    }

    /// The highest prominence value among the facts, if any.
    pub fn max_prominence(&self) -> Option<f64> {
        self.facts.first().map(RankedFact::prominence)
    }

    /// Re-sorts the facts into the canonical total order of
    /// [`RankedFact::ranking_cmp`] (descending prominence, ties by constraint
    /// values then subspace).
    ///
    /// Reports produced by a monitor are already in this order — the ranking
    /// sorts with `ranking_cmp`, which is what makes sharded and unsharded
    /// reports byte-comparable with `==`. `normalize` is the idempotent
    /// canonicaliser for reports assembled by other means (hand-built
    /// fixtures, deserialised data from older versions that ranked with a
    /// stable emission-order sort).
    pub fn normalize(&mut self) {
        self.facts.sort_by(RankedFact::ranking_cmp);
    }

    /// Deep structural self-check; see [`sitfact_core::audit::Audit`].
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    pub fn audit(&self) -> Result<(), sitfact_core::AuditViolation> {
        sitfact_core::Audit::check(self)
    }
}

/// Checks that a report is in the canonical normalized form every monitor
/// emits: facts sorted by [`RankedFact::ranking_cmp`] (so `normalize` is a
/// no-op) and `prominent_count` marking exactly the prefix of facts tied
/// with the maximum prominence.
#[cfg(any(test, debug_assertions, feature = "deep-audit"))]
impl sitfact_core::Audit for ArrivalReport {
    fn check(&self) -> Result<(), sitfact_core::AuditViolation> {
        use sitfact_core::AuditViolation;
        let fail = |invariant: &'static str, detail: String| {
            Err(AuditViolation::new("ArrivalReport", invariant, detail))
        };
        for (pos, pair) in self.facts.windows(2).enumerate() {
            if RankedFact::ranking_cmp(&pair[0], &pair[1]) == std::cmp::Ordering::Greater {
                return fail(
                    "facts-normalized",
                    format!(
                        "tuple {}: facts {pos} and {} are out of canonical ranking order \
                         (prominence {} before {})",
                        self.tuple_id,
                        pos + 1,
                        pair[0].prominence(),
                        pair[1].prominence()
                    ),
                );
            }
        }
        if self.prominent_count > self.facts.len() {
            return fail(
                "prominent-count-bounded",
                format!(
                    "tuple {}: prominent_count = {} exceeds the {} retained facts",
                    self.tuple_id,
                    self.prominent_count,
                    self.facts.len()
                ),
            );
        }
        // `prominent_count = 0` can also mean "maximum below τ", which the
        // report does not record — only a positive count is checkable.
        if self.prominent_count > 0 {
            let max = self.facts[0].prominence();
            let tied = |f: &RankedFact| (f.prominence() - max).abs() < f64::EPSILON;
            if let Some(pos) = self.facts[..self.prominent_count]
                .iter()
                .position(|f| !tied(f))
            {
                return fail(
                    "prominent-prefix-tied",
                    format!(
                        "tuple {}: fact {pos} is marked prominent but its prominence {} is \
                         not tied with the maximum {max}",
                        self.tuple_id,
                        self.facts[pos].prominence()
                    ),
                );
            }
            if let Some(f) = self.facts.get(self.prominent_count) {
                if tied(f) {
                    return fail(
                        "prominent-prefix-tied",
                        format!(
                            "tuple {}: fact {} ties the maximum prominence {max} but is not \
                             counted prominent",
                            self.tuple_id, self.prominent_count
                        ),
                    );
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_core::{Constraint, SubspaceMask};

    fn fact(context: u64, skyline: u64) -> RankedFact {
        RankedFact {
            pair: SkylinePair::new(Constraint::top(2), SubspaceMask(0b01)),
            context_size: context,
            skyline_size: skyline,
        }
    }

    #[test]
    fn prominence_is_the_cardinality_ratio() {
        // The paper's Section VII example: 5 tuples, 2 skyline tuples -> 5/2.
        assert_eq!(fact(5, 2).prominence(), 2.5);
        assert_eq!(fact(3, 2).prominence(), 1.5);
        assert_eq!(fact(0, 0).prominence(), 0.0);
    }

    #[test]
    fn normalize_orders_ties_canonically() {
        use sitfact_core::UNBOUND;
        let fact_with = |values: Vec<u32>, context: u64| RankedFact {
            pair: SkylinePair::new(Constraint::from_values(values), SubspaceMask(0b01)),
            context_size: context,
            skyline_size: 1,
        };
        let mut a = ArrivalReport {
            tuple_id: 0,
            facts: vec![
                fact_with(vec![2, UNBOUND], 4),
                fact_with(vec![1, UNBOUND], 4),
                fact_with(vec![0, 0], 9),
            ],
            prominent_count: 1,
        };
        let mut b = ArrivalReport {
            tuple_id: 0,
            facts: vec![
                fact_with(vec![0, 0], 9),
                fact_with(vec![1, UNBOUND], 4),
                fact_with(vec![2, UNBOUND], 4),
            ],
            prominent_count: 1,
        };
        a.normalize();
        b.normalize();
        assert_eq!(a, b);
        // Highest prominence still first; ties resolved by constraint values.
        assert_eq!(a.facts[0].context_size, 9);
        assert_eq!(a.facts[1].pair.constraint.values()[0], 1);
    }

    #[test]
    fn report_accessors() {
        let report = ArrivalReport {
            tuple_id: 7,
            facts: vec![fact(100, 1), fact(100, 1), fact(10, 2)],
            prominent_count: 2,
        };
        assert_eq!(report.prominent().len(), 2);
        assert_eq!(report.top_k(1).len(), 1);
        assert_eq!(report.top_k(99).len(), 3);
        assert_eq!(report.max_prominence(), Some(100.0));
        let empty = ArrivalReport {
            tuple_id: 0,
            facts: vec![],
            prominent_count: 0,
        };
        assert_eq!(empty.max_prominence(), None);
        assert!(empty.prominent().is_empty());
    }
}
