//! # sitfact-prominence
//!
//! Prominence ranking and reporting of situational facts (Section VII of the
//! paper).
//!
//! A newly arrived tuple may enter the contextual skylines of hundreds of
//! constraint–measure pairs; reporting all of them buries the newsworthy ones.
//! The paper measures the **prominence** of a fact `(C, M)` as
//! `|σ_C(R)| / |λ_M(σ_C(R))|` — how many tuples the context holds per skyline
//! tuple — ranks the facts of each arrival in descending prominence, and calls
//! *prominent* those that attain the maximum and clear a threshold `τ`.
//!
//! The central abstraction is the [`StreamMonitor`] trait — the one,
//! object-safe ingest surface every monitor implements, and the type
//! (`Box<dyn StreamMonitor>`) a generic driver such as the `sitfact-serve`
//! TCP front-end holds. [`FactMonitor`] is its canonical implementation: it
//! owns the append-only table, a
//! [`ContextCounter`](sitfact_storage::ContextCounter), and any
//! [`Discovery`](sitfact_algos::Discovery) algorithm, and turns a stream of
//! raw tuples into a stream of [`ArrivalReport`]s. [`ShardedMonitor`]
//! partitions that stream by a routing attribute across independent
//! `FactMonitor` shards and fans batched windows out in parallel — provably
//! equivalent to an unsharded monitor over the anchored constraint space (see
//! the [`sharded`] module docs for the soundness argument).
//! [`DurableMonitor`] wraps any monitor with a
//! write-ahead arrival log and snapshot-bounded crash recovery (see the
//! [`durable`] module docs). [`WindowedMonitor`] bounds any monitor to a
//! sliding window of recent arrivals, retracting expired tuples at batch
//! boundaries (see the [`window`] module docs). [`DistributionStats`]
//! accumulates the figures of the paper's case study (Figs. 14–15), and
//! [`narrate()`] renders facts as English sentences in the style of the
//! paper's examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod durable;
pub mod fact;
pub mod monitor;
pub mod narrate;
pub mod sharded;
pub mod stream;
pub mod window;

pub use distribution::DistributionStats;
pub use durable::{replay_log, DurableMonitor, RecoveryReport, ReplayOutcome, WalOptions};
pub use fact::{ArrivalReport, RankedFact};
pub use monitor::{FactMonitor, MonitorConfig};
pub use narrate::narrate;
pub use sharded::ShardedMonitor;
pub use stream::{MonitorSnapshot, StreamMonitor};
pub use window::{WindowPolicy, WindowedMonitor};
// The WAL types that cross the serve boundary (`STATS` counters, sync
// policy), re-exported so the serving layer needs no direct storage
// dependency.
pub use sitfact_storage::{SyncPolicy, WalStats};
