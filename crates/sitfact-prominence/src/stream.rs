//! The [`StreamMonitor`] trait: one ingest surface for every monitor.
//!
//! [`FactMonitor`](crate::FactMonitor) and
//! [`ShardedMonitor`](crate::ShardedMonitor) grew near-duplicate families of
//! ingest entry points (`ingest`, `ingest_raw`, `ingest_batch`,
//! `ingest_batch_slice`, `ingest_all`), which meant nothing generic — a
//! network front-end, a bench driver, an example, a property test — could
//! hold "some monitor" without committing to a concrete type. This trait is
//! that missing abstraction: the monitors implement a small required core
//! (encode, per-arrival ingest, batched slice ingest, plus read access to
//! schema/config/size), and every convenience form is a *provided* method
//! with one shared definition.
//!
//! The trait is deliberately **object-safe**: `Box<dyn StreamMonitor>` is the
//! type the [`sitfact-serve`](https://docs.rs/sitfact-serve) TCP front-end
//! serves, so whether a deployment runs sharded or unsharded is a
//! construction-time config choice, not a code path.

use crate::fact::ArrivalReport;
use crate::monitor::MonitorConfig;
use sitfact_core::{Result, Schema, SitFactError, Tuple, TupleId, TupleRef};
use sitfact_storage::{PostingIndexStats, WalStats};

/// A point-in-time export of a monitor's externally visible state, assembled
/// by [`StreamMonitor::export_snapshot`].
///
/// This is the payload the serving layer publishes into a
/// [`SnapshotCell`](sitfact_core::snapshot::SnapshotCell) at window
/// boundaries so `STATS`-style reads never touch the ingest path: everything
/// a read-mostly client asks about, captured as plain owned values.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    /// Number of tuples ingested so far.
    pub len: usize,
    /// The schema's relation name.
    pub schema_name: String,
    /// The prominence threshold τ.
    pub tau: f64,
    /// Per-arrival fact-retention cap, if configured.
    pub keep_top: Option<usize>,
    /// Anchored dimension index, if the discovery config carries one.
    pub anchor_dim: Option<usize>,
    /// Aggregate posting-index footprint (for a sharded monitor: summed over
    /// all shards).
    pub postings: PostingIndexStats,
    /// Write-ahead-log counters (all zero for a monitor without a durability
    /// layer; see [`StreamMonitor::wal_stats`]).
    pub wal: WalStats,
    /// Tuples still answering queries (`len` minus everything retracted).
    pub live_rows: usize,
    /// Retracted tuples still physically present (awaiting compaction).
    pub tombstones: usize,
    /// Retracted tuples physically dropped by compaction.
    pub evicted: usize,
}

/// A monitor that turns a stream of tuples into per-arrival fact reports.
///
/// Required methods are the minimal core each implementation must own (the
/// batched slice form is required rather than the owned form because the
/// columnar tables copy values out of the window anyway — borrowing is the
/// fundamental operation, owning is the convenience). Everything else is
/// provided once, so all monitors expose the same surface with the same
/// semantics.
///
/// The trait is object-safe; generic drivers take `&mut dyn StreamMonitor`:
///
/// ```
/// use sitfact_core::{Direction, DiscoveryConfig, SchemaBuilder};
/// use sitfact_algos::STopDown;
/// use sitfact_prominence::{FactMonitor, MonitorConfig, ShardedMonitor, StreamMonitor};
///
/// fn feed(monitor: &mut dyn StreamMonitor) -> usize {
///     monitor.ingest_raw(&["Wesley", "Celtics"], vec![12.0]).unwrap();
///     monitor.ingest_raw(&["Sherman", "Hawks"], vec![9.0]).unwrap();
///     monitor.len()
/// }
///
/// let schema = SchemaBuilder::new("gamelog")
///     .dimension("player")
///     .dimension("team")
///     .measure("points", Direction::HigherIsBetter)
///     .build()
///     .unwrap();
/// let config = MonitorConfig::default().with_tau(1.0);
/// let mut flat: Box<dyn StreamMonitor> = Box::new(FactMonitor::new(
///     schema.clone(),
///     STopDown::new(&schema, config.discovery),
///     config,
/// ));
/// let mut sharded: Box<dyn StreamMonitor> =
///     Box::new(ShardedMonitor::by_attribute(schema, "team", 2, config, STopDown::new).unwrap());
/// assert_eq!(feed(flat.as_mut()), 2);
/// assert_eq!(feed(sharded.as_mut()), 2);
/// ```
pub trait StreamMonitor {
    /// The schema the monitor ingests against (grows as raw rows intern new
    /// dimension values).
    fn schema(&self) -> &Schema;

    /// The monitor configuration (for a sharded monitor: the effective,
    /// anchored configuration every shard runs).
    fn config(&self) -> &MonitorConfig;

    /// Number of tuples ingested so far.
    fn len(&self) -> usize;

    /// Zero-copy view of an ingested tuple by its (global) id, or `None` if
    /// no such tuple was ingested yet.
    fn tuple(&self, tuple_id: TupleId) -> Option<TupleRef<'_>>;

    /// Interns a raw row against [`StreamMonitor::schema`] and validates it,
    /// without ingesting — the encoding half of [`StreamMonitor::ingest_raw`],
    /// for callers assembling a window for [`StreamMonitor::ingest_batch`].
    fn encode_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<Tuple>;

    /// Ingests one already-encoded tuple and reports its ranked facts.
    fn ingest(&mut self, tuple: Tuple) -> Result<ArrivalReport>;

    /// Ingests a whole window of arrivals through the implementation's
    /// batched fast path, returning exactly the reports a sequential
    /// [`StreamMonitor::ingest`] loop would produce, in the same order.
    ///
    /// The window is only read (the columnar tables copy the values anyway).
    /// The batch is all-or-nothing: if any tuple fails validation, no tuple
    /// of the window is ingested.
    fn ingest_batch_slice(&mut self, tuples: &[Tuple]) -> Result<Vec<ArrivalReport>>;

    /// Whether no tuple was ingested yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tuples still answering queries — [`StreamMonitor::len`]
    /// minus everything retracted. Equal to `len()` for monitors without a
    /// retraction path (the default).
    fn live_rows(&self) -> usize {
        self.len()
    }

    /// Retracted tuples still physically present, awaiting compaction. Zero
    /// for monitors without a retraction path (the default).
    fn tombstone_rows(&self) -> usize {
        0
    }

    /// Retracted tuples already physically dropped by compaction. Zero for
    /// monitors without a retraction path (the default).
    fn evicted_rows(&self) -> usize {
        0
    }

    /// Retracts every tuple with id below `up_to` (a *watermark target*, not
    /// a count: retracting to an already-passed watermark is a no-op).
    /// Returns the number of tuples newly retracted.
    ///
    /// The sliding-window layer ([`WindowedMonitor`](crate::WindowedMonitor))
    /// calls this at window boundaries. The default refuses: a monitor must
    /// opt into retraction by overriding, so a window policy can never be
    /// silently ignored.
    fn evict_prefix(&mut self, up_to: TupleId) -> Result<usize> {
        let _ = up_to;
        Err(SitFactError::InvalidConfig(
            "this monitor does not support retraction (evict_prefix)".to_string(),
        ))
    }

    /// Ingests a tuple given as raw dimension strings plus measures.
    fn ingest_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<ArrivalReport> {
        let tuple = self.encode_raw(dims, measures)?;
        self.ingest(tuple)
    }

    /// Owned-window form of [`StreamMonitor::ingest_batch_slice`] — by
    /// default a thin wrapper, kept because windows are naturally assembled
    /// as `Vec<Tuple>`. Implementations whose batching can exploit ownership
    /// override it (a sharded monitor partitions an owned window by move,
    /// paying zero per-tuple clones); semantics must stay identical to the
    /// slice form.
    fn ingest_batch(&mut self, tuples: Vec<Tuple>) -> Result<Vec<ArrivalReport>> {
        self.ingest_batch_slice(&tuples)
    }

    /// Ingests a batch through the sequential per-arrival path, one report
    /// per tuple. Prefer [`StreamMonitor::ingest_batch`], which produces
    /// identical reports faster; this loop is the ground truth the
    /// batch-equivalence tests compare against.
    fn ingest_all(&mut self, tuples: Vec<Tuple>) -> Result<Vec<ArrivalReport>> {
        tuples.into_iter().map(|t| self.ingest(t)).collect()
    }

    /// Aggregate posting-index footprint/compression statistics. For a
    /// sharded monitor this sums over all shards; the default (for monitors
    /// without an inverted index) reports all-zero stats.
    fn posting_stats(&self) -> PostingIndexStats {
        PostingIndexStats::default()
    }

    /// Captures the monitor's externally visible state as plain owned values
    /// — the payload a serving layer publishes at window boundaries so
    /// read-mostly clients never touch the ingest path.
    fn export_snapshot(&self) -> MonitorSnapshot {
        let config = self.config();
        MonitorSnapshot {
            len: self.len(),
            schema_name: self.schema().name().to_string(),
            tau: config.tau,
            keep_top: config.keep_top,
            anchor_dim: config.discovery.anchor_dim,
            postings: self.posting_stats(),
            wal: self.wal_stats(),
            live_rows: self.live_rows(),
            tombstones: self.tombstone_rows(),
            evicted: self.evicted_rows(),
        }
    }

    /// Serializes the monitor's full state (table with dictionaries and
    /// native posting layout, plus the algorithm's skyline-store cells) for
    /// a crash-recovery snapshot, or `None` when this monitor cannot export
    /// full state (the default; a [`ShardedMonitor`](crate::ShardedMonitor)
    /// also returns `None` — its durable form is the raw arrival log, which
    /// replays into any shard count). Recovery falls back to full-log replay
    /// when export is unsupported.
    fn export_durable(&self) -> Option<Vec<u8>> {
        None
    }

    /// Replaces the monitor's state with a snapshot produced by
    /// [`StreamMonitor::export_durable`].
    ///
    /// Returns `Ok(true)` when the state was restored, `Ok(false)` when this
    /// monitor does not support snapshot restore (the monitor is untouched
    /// and the caller falls back to full-log replay), and `Err` when the
    /// snapshot is corrupt or shaped for a different monitor (the monitor is
    /// again untouched — restore is all-or-nothing).
    fn restore_durable(&mut self, snapshot: &[u8]) -> Result<bool> {
        let _ = snapshot;
        Ok(false)
    }

    /// Write-ahead-log counters, surfaced through the serve `STATS` verb.
    /// All zero by default; the durability wrapper
    /// ([`DurableMonitor`](crate::DurableMonitor)) overrides this with its
    /// log's live counters.
    fn wal_stats(&self) -> WalStats {
        WalStats::default()
    }
}

/// Forwarding impl so a boxed monitor *is* a monitor — this is what lets the
/// durability wrapper ([`DurableMonitor`](crate::DurableMonitor)) wrap the
/// serve layer's `Box<dyn StreamMonitor + Send>` tenants without knowing the
/// concrete type. Every method forwards (provided ones included), so an
/// override on the boxed type is preserved through the box.
impl<M: StreamMonitor + ?Sized> StreamMonitor for Box<M> {
    fn schema(&self) -> &Schema {
        (**self).schema()
    }

    fn config(&self) -> &MonitorConfig {
        (**self).config()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn tuple(&self, tuple_id: TupleId) -> Option<TupleRef<'_>> {
        (**self).tuple(tuple_id)
    }

    fn encode_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<Tuple> {
        (**self).encode_raw(dims, measures)
    }

    fn ingest(&mut self, tuple: Tuple) -> Result<ArrivalReport> {
        (**self).ingest(tuple)
    }

    fn ingest_batch_slice(&mut self, tuples: &[Tuple]) -> Result<Vec<ArrivalReport>> {
        (**self).ingest_batch_slice(tuples)
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn live_rows(&self) -> usize {
        (**self).live_rows()
    }

    fn tombstone_rows(&self) -> usize {
        (**self).tombstone_rows()
    }

    fn evicted_rows(&self) -> usize {
        (**self).evicted_rows()
    }

    fn evict_prefix(&mut self, up_to: TupleId) -> Result<usize> {
        (**self).evict_prefix(up_to)
    }

    fn ingest_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<ArrivalReport> {
        (**self).ingest_raw(dims, measures)
    }

    fn ingest_batch(&mut self, tuples: Vec<Tuple>) -> Result<Vec<ArrivalReport>> {
        (**self).ingest_batch(tuples)
    }

    fn ingest_all(&mut self, tuples: Vec<Tuple>) -> Result<Vec<ArrivalReport>> {
        (**self).ingest_all(tuples)
    }

    fn posting_stats(&self) -> PostingIndexStats {
        (**self).posting_stats()
    }

    fn export_snapshot(&self) -> MonitorSnapshot {
        (**self).export_snapshot()
    }

    fn export_durable(&self) -> Option<Vec<u8>> {
        (**self).export_durable()
    }

    fn restore_durable(&mut self, snapshot: &[u8]) -> Result<bool> {
        (**self).restore_durable(snapshot)
    }

    fn wal_stats(&self) -> WalStats {
        (**self).wal_stats()
    }
}
