//! The [`StreamMonitor`] trait: one ingest surface for every monitor.
//!
//! [`FactMonitor`](crate::FactMonitor) and
//! [`ShardedMonitor`](crate::ShardedMonitor) grew near-duplicate families of
//! ingest entry points (`ingest`, `ingest_raw`, `ingest_batch`,
//! `ingest_batch_slice`, `ingest_all`), which meant nothing generic — a
//! network front-end, a bench driver, an example, a property test — could
//! hold "some monitor" without committing to a concrete type. This trait is
//! that missing abstraction: the monitors implement a small required core
//! (encode, per-arrival ingest, batched slice ingest, plus read access to
//! schema/config/size), and every convenience form is a *provided* method
//! with one shared definition.
//!
//! The trait is deliberately **object-safe**: `Box<dyn StreamMonitor>` is the
//! type the [`sitfact-serve`](https://docs.rs/sitfact-serve) TCP front-end
//! serves, so whether a deployment runs sharded or unsharded is a
//! construction-time config choice, not a code path.

use crate::fact::ArrivalReport;
use crate::monitor::MonitorConfig;
use sitfact_core::{Result, Schema, Tuple, TupleId, TupleRef};
use sitfact_storage::PostingIndexStats;

/// A point-in-time export of a monitor's externally visible state, assembled
/// by [`StreamMonitor::export_snapshot`].
///
/// This is the payload the serving layer publishes into a
/// [`SnapshotCell`](sitfact_core::snapshot::SnapshotCell) at window
/// boundaries so `STATS`-style reads never touch the ingest path: everything
/// a read-mostly client asks about, captured as plain owned values.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    /// Number of tuples ingested so far.
    pub len: usize,
    /// The schema's relation name.
    pub schema_name: String,
    /// The prominence threshold τ.
    pub tau: f64,
    /// Per-arrival fact-retention cap, if configured.
    pub keep_top: Option<usize>,
    /// Anchored dimension index, if the discovery config carries one.
    pub anchor_dim: Option<usize>,
    /// Aggregate posting-index footprint (for a sharded monitor: summed over
    /// all shards).
    pub postings: PostingIndexStats,
}

/// A monitor that turns a stream of tuples into per-arrival fact reports.
///
/// Required methods are the minimal core each implementation must own (the
/// batched slice form is required rather than the owned form because the
/// columnar tables copy values out of the window anyway — borrowing is the
/// fundamental operation, owning is the convenience). Everything else is
/// provided once, so all monitors expose the same surface with the same
/// semantics.
///
/// The trait is object-safe; generic drivers take `&mut dyn StreamMonitor`:
///
/// ```
/// use sitfact_core::{Direction, DiscoveryConfig, SchemaBuilder};
/// use sitfact_algos::STopDown;
/// use sitfact_prominence::{FactMonitor, MonitorConfig, ShardedMonitor, StreamMonitor};
///
/// fn feed(monitor: &mut dyn StreamMonitor) -> usize {
///     monitor.ingest_raw(&["Wesley", "Celtics"], vec![12.0]).unwrap();
///     monitor.ingest_raw(&["Sherman", "Hawks"], vec![9.0]).unwrap();
///     monitor.len()
/// }
///
/// let schema = SchemaBuilder::new("gamelog")
///     .dimension("player")
///     .dimension("team")
///     .measure("points", Direction::HigherIsBetter)
///     .build()
///     .unwrap();
/// let config = MonitorConfig::default().with_tau(1.0);
/// let mut flat: Box<dyn StreamMonitor> = Box::new(FactMonitor::new(
///     schema.clone(),
///     STopDown::new(&schema, config.discovery),
///     config,
/// ));
/// let mut sharded: Box<dyn StreamMonitor> =
///     Box::new(ShardedMonitor::by_attribute(schema, "team", 2, config, STopDown::new).unwrap());
/// assert_eq!(feed(flat.as_mut()), 2);
/// assert_eq!(feed(sharded.as_mut()), 2);
/// ```
pub trait StreamMonitor {
    /// The schema the monitor ingests against (grows as raw rows intern new
    /// dimension values).
    fn schema(&self) -> &Schema;

    /// The monitor configuration (for a sharded monitor: the effective,
    /// anchored configuration every shard runs).
    fn config(&self) -> &MonitorConfig;

    /// Number of tuples ingested so far.
    fn len(&self) -> usize;

    /// Zero-copy view of an ingested tuple by its (global) id, or `None` if
    /// no such tuple was ingested yet.
    fn tuple(&self, tuple_id: TupleId) -> Option<TupleRef<'_>>;

    /// Interns a raw row against [`StreamMonitor::schema`] and validates it,
    /// without ingesting — the encoding half of [`StreamMonitor::ingest_raw`],
    /// for callers assembling a window for [`StreamMonitor::ingest_batch`].
    fn encode_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<Tuple>;

    /// Ingests one already-encoded tuple and reports its ranked facts.
    fn ingest(&mut self, tuple: Tuple) -> Result<ArrivalReport>;

    /// Ingests a whole window of arrivals through the implementation's
    /// batched fast path, returning exactly the reports a sequential
    /// [`StreamMonitor::ingest`] loop would produce, in the same order.
    ///
    /// The window is only read (the columnar tables copy the values anyway).
    /// The batch is all-or-nothing: if any tuple fails validation, no tuple
    /// of the window is ingested.
    fn ingest_batch_slice(&mut self, tuples: &[Tuple]) -> Result<Vec<ArrivalReport>>;

    /// Whether no tuple was ingested yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ingests a tuple given as raw dimension strings plus measures.
    fn ingest_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<ArrivalReport> {
        let tuple = self.encode_raw(dims, measures)?;
        self.ingest(tuple)
    }

    /// Owned-window form of [`StreamMonitor::ingest_batch_slice`] — by
    /// default a thin wrapper, kept because windows are naturally assembled
    /// as `Vec<Tuple>`. Implementations whose batching can exploit ownership
    /// override it (a sharded monitor partitions an owned window by move,
    /// paying zero per-tuple clones); semantics must stay identical to the
    /// slice form.
    fn ingest_batch(&mut self, tuples: Vec<Tuple>) -> Result<Vec<ArrivalReport>> {
        self.ingest_batch_slice(&tuples)
    }

    /// Ingests a batch through the sequential per-arrival path, one report
    /// per tuple. Prefer [`StreamMonitor::ingest_batch`], which produces
    /// identical reports faster; this loop is the ground truth the
    /// batch-equivalence tests compare against.
    fn ingest_all(&mut self, tuples: Vec<Tuple>) -> Result<Vec<ArrivalReport>> {
        tuples.into_iter().map(|t| self.ingest(t)).collect()
    }

    /// Aggregate posting-index footprint/compression statistics. For a
    /// sharded monitor this sums over all shards; the default (for monitors
    /// without an inverted index) reports all-zero stats.
    fn posting_stats(&self) -> PostingIndexStats {
        PostingIndexStats::default()
    }

    /// Captures the monitor's externally visible state as plain owned values
    /// — the payload a serving layer publishes at window boundaries so
    /// read-mostly clients never touch the ingest path.
    fn export_snapshot(&self) -> MonitorSnapshot {
        let config = self.config();
        MonitorSnapshot {
            len: self.len(),
            schema_name: self.schema().name().to_string(),
            tau: config.tau,
            keep_top: config.keep_top,
            anchor_dim: config.discovery.anchor_dim,
            postings: self.posting_stats(),
        }
    }
}
