//! [`DurableMonitor`]: write-ahead arrival logging and snapshot-bounded
//! crash recovery for any [`StreamMonitor`].
//!
//! The monitors themselves are deliberately volatile — their state is a pure
//! function of the raw arrival sequence. This module makes that property
//! load-bearing: the wrapper appends every accepted window to a checksummed
//! [`ArrivalLog`] *before* the window touches
//! the in-memory monitor, so after a crash the monitor is rebuilt by
//! replaying the log. Because the log stores **raw strings** (not interned
//! ids), the same log also replays into a monitor with a different shard
//! count — resharding a deployment is "replay the log into a new
//! [`ShardedMonitor`](crate::ShardedMonitor)", see [`replay_log`].
//!
//! Replay cost is bounded by **snapshots**: every `snapshot_every` rows (see
//! [`WalOptions`]) the wrapper asks the inner monitor for its full
//! serialized state ([`StreamMonitor::export_durable`]) and writes it to a
//! single-frame snapshot file next to the log segments. Recovery loads the
//! newest intact snapshot and replays only the log suffix behind it; a
//! corrupt or unreadable snapshot silently degrades to an older snapshot or
//! to full-log replay — the log is never truncated, so a lost snapshot never
//! loses data.
//!
//! Torn tails (a crash mid-`write`) are handled one layer down:
//! [`ArrivalLog::open`] truncates the damaged segment to its valid prefix
//! and reports how many bytes were dropped, which [`DurableMonitor::open`]
//! surfaces in its [`RecoveryReport`]. A window is acknowledged only after
//! its log append returned, so a dropped tail can only ever contain windows
//! that were never acked.

use crate::fact::{ArrivalReport, RankedFact};
use crate::monitor::MonitorConfig;
use crate::stream::StreamMonitor;
use sitfact_core::{
    Constraint, Result, Schema, SitFactError, SkylinePair, SubspaceMask, Tuple, TupleId, TupleRef,
};
use sitfact_storage::wal::{self, ByteCursor};
use sitfact_storage::{
    ArrivalLog, LoggedRow, PostingIndexStats, SyncPolicy, WalStats, WindowRecord,
};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Configuration of a [`DurableMonitor`]'s log and snapshot behaviour.
///
/// Builder-style: start from [`WalOptions::default()`] and chain `with_*`
/// setters.
///
/// ```
/// use sitfact_prominence::WalOptions;
/// use sitfact_storage::SyncPolicy;
///
/// let opts = WalOptions::default()
///     .with_sync(SyncPolicy::Os)
///     .with_snapshot_every(10_000);
/// assert_eq!(opts.snapshot_every, Some(10_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// When appended windows are forced to stable storage. The default,
    /// [`SyncPolicy::Always`], fsyncs before every ack (survives power
    /// loss); [`SyncPolicy::Os`] leaves flushing to the OS (survives a
    /// process kill, not a power cut).
    pub sync: SyncPolicy,
    /// Take a full-state snapshot after at least this many rows since the
    /// last one. `None` (the default) disables snapshots: recovery replays
    /// the whole log.
    pub snapshot_every: Option<u64>,
    /// Rotate to a new log segment file once the current one reaches this
    /// many bytes.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            sync: SyncPolicy::Always,
            snapshot_every: None,
            segment_bytes: 4 * 1024 * 1024,
        }
    }
}

impl WalOptions {
    /// Sets the sync policy.
    pub fn with_sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// Enables snapshots every `rows` ingested rows (at window boundaries;
    /// clamped to at least 1).
    pub fn with_snapshot_every(mut self, rows: u64) -> Self {
        self.snapshot_every = Some(rows.max(1));
        self
    }

    /// Disables periodic snapshots (recovery replays the full log).
    pub fn without_snapshots(mut self) -> Self {
        self.snapshot_every = None;
        self
    }

    /// Sets the log segment rotation size in bytes (clamped to at least
    /// 4 KiB so rotation stays coarser than single frames).
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(4096);
        self
    }
}

/// What [`DurableMonitor::open`] did to rebuild the monitor's state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Rows restored from the newest intact snapshot (0 when no snapshot
    /// was usable or the monitor does not support snapshot restore).
    pub snapshot_rows: u64,
    /// Log windows replayed behind the snapshot.
    pub replayed_windows: u64,
    /// Rows replayed behind the snapshot.
    pub replayed_rows: u64,
    /// Bytes dropped behind a torn or corrupted log tail (0 for a clean
    /// shutdown). Dropped bytes can only hold windows that were never
    /// acknowledged.
    pub dropped_bytes: u64,
}

/// What [`replay_log`] reproduced from a raw arrival log.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Every arrival report the replayed stream produced, in arrival order.
    pub reports: Vec<ArrivalReport>,
    /// Number of windows replayed.
    pub windows: u64,
    /// Number of rows replayed.
    pub rows: u64,
    /// Bytes dropped behind a torn or corrupted log tail.
    pub dropped_bytes: u64,
}

// ---------------------------------------------------------------------------
// Arrival-report codec (stored inside snapshots so recovery can reproduce
// the last acknowledged report without replaying its window).
// ---------------------------------------------------------------------------

fn encode_report(report: &ArrivalReport, out: &mut Vec<u8>) {
    wal::put_u64(out, u64::from(report.tuple_id));
    wal::put_u32(out, report.prominent_count as u32);
    wal::put_u32(out, report.facts.len() as u32);
    for fact in &report.facts {
        let values = fact.pair.constraint.values();
        wal::put_u32(out, values.len() as u32);
        for &v in values {
            wal::put_u32(out, v);
        }
        wal::put_u32(out, fact.pair.subspace.0);
        wal::put_u64(out, fact.context_size);
        wal::put_u64(out, fact.skyline_size);
    }
}

fn decode_report(cur: &mut ByteCursor<'_>) -> Result<ArrivalReport> {
    let tuple_id = cur.get_u64()?;
    let tuple_id = TupleId::try_from(tuple_id).map_err(|_| {
        SitFactError::Parse(format!("snapshot report: tuple id {tuple_id} overflows"))
    })?;
    let prominent_count = cur.get_u32()? as usize;
    let nfacts = cur.get_count(13, "snapshot report facts")?;
    let mut facts = Vec::with_capacity(nfacts);
    for _ in 0..nfacts {
        let nvalues = cur.get_count(4, "snapshot report constraint values")?;
        let mut values = Vec::with_capacity(nvalues);
        for _ in 0..nvalues {
            values.push(cur.get_u32()?);
        }
        let subspace = SubspaceMask(cur.get_u32()?);
        let context_size = cur.get_u64()?;
        let skyline_size = cur.get_u64()?;
        facts.push(RankedFact {
            pair: SkylinePair::new(Constraint::from_values(values), subspace),
            context_size,
            skyline_size,
        });
    }
    if prominent_count > facts.len() {
        return Err(SitFactError::Parse(format!(
            "snapshot report: prominent count {prominent_count} exceeds {} facts",
            facts.len()
        )));
    }
    Ok(ArrivalReport {
        tuple_id,
        facts,
        prominent_count,
    })
}

// ---------------------------------------------------------------------------
// Snapshot files
// ---------------------------------------------------------------------------

fn snapshot_name(covered_rows: u64) -> String {
    format!("snapshot-{covered_rows:020}.snap")
}

/// Snapshot files in `dir`, newest (most rows covered) first.
fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(err) => return Err(err.into()),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".snap"))
        else {
            continue;
        };
        if let Ok(rows) = stem.parse::<u64>() {
            found.push((rows, entry.path()));
        }
    }
    found.sort_by_key(|entry| std::cmp::Reverse(entry.0));
    Ok(found)
}

/// Parses a snapshot file: `(covered_rows, last report, monitor state blob)`.
fn parse_snapshot(bytes: &[u8]) -> Result<(u64, Option<ArrivalReport>, Vec<u8>)> {
    let (frames, valid_end) = wal::scan_frames(bytes);
    if frames.len() != 1 || valid_end != bytes.len() {
        return Err(SitFactError::Parse(
            "snapshot file is not a single intact frame".to_string(),
        ));
    }
    let mut cur = ByteCursor::new(frames[0]);
    let covered = cur.get_u64()?;
    let report = match cur.get_u8()? {
        0 => None,
        1 => Some(decode_report(&mut cur)?),
        other => {
            return Err(SitFactError::Parse(format!(
                "snapshot: unknown report tag {other}"
            )))
        }
    };
    let blob = cur.get_bytes()?.to_vec();
    if !cur.is_empty() {
        return Err(SitFactError::Parse(format!(
            "snapshot: {} trailing bytes after state blob",
            cur.remaining()
        )));
    }
    Ok((covered, report, blob))
}

/// Replays one logged window into `monitor` through its batched fast path.
fn replay_window(
    monitor: &mut (impl StreamMonitor + ?Sized),
    window: &WindowRecord,
) -> Result<Vec<ArrivalReport>> {
    let have = monitor.len() as u64;
    if window.first_id != have {
        return Err(SitFactError::Parse(format!(
            "arrival log out of sequence: window starts at row {} but the monitor holds {have} rows",
            window.first_id
        )));
    }
    let mut tuples = Vec::with_capacity(window.rows.len());
    for row in &window.rows {
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        tuples.push(monitor.encode_raw(&dims, row.measures.clone())?);
    }
    monitor.ingest_batch_slice(&tuples)
}

/// Replays the **entire** raw arrival log in `dir` into a fresh monitor,
/// ignoring snapshots (which are shaped for the monitor that wrote them).
///
/// This is the resharding path: the log stores raw strings, so it replays
/// into *any* [`StreamMonitor`] over the same relation — in particular a
/// [`ShardedMonitor`](crate::ShardedMonitor) with a different shard count
/// than the monitor that produced the log. The reports the replay produces
/// are identical to the ones the original monitor acknowledged.
///
/// The monitor must be empty (or hold a prefix of the logged stream —
/// replay continues behind `monitor.len()` only if the windows line up).
pub fn replay_log(
    dir: impl AsRef<Path>,
    monitor: &mut (impl StreamMonitor + ?Sized),
) -> Result<ReplayOutcome> {
    let scanned = wal::scan_log(dir.as_ref())?;
    let mut reports = Vec::new();
    let mut windows = 0u64;
    let mut rows = 0u64;
    for window in &scanned.windows {
        if window.first_id + window.rows.len() as u64 <= monitor.len() as u64 {
            continue;
        }
        reports.extend(replay_window(monitor, window)?);
        windows += 1;
        rows += window.rows.len() as u64;
    }
    Ok(ReplayOutcome {
        reports,
        windows,
        rows,
        dropped_bytes: scanned.dropped_bytes,
    })
}

/// A [`StreamMonitor`] wrapper that logs every accepted window to a
/// write-ahead arrival log before acknowledging it, takes periodic
/// full-state snapshots, and rebuilds the wrapped monitor from
/// snapshot + log on [`DurableMonitor::open`].
///
/// The wrapper is itself a [`StreamMonitor`], so it slots in anywhere a
/// monitor does — the serve layer wraps its `Box<dyn StreamMonitor + Send>`
/// tenants in one when a data directory is configured.
///
/// ```
/// use sitfact_algos::STopDown;
/// use sitfact_core::{Direction, SchemaBuilder};
/// use sitfact_prominence::{
///     DurableMonitor, FactMonitor, MonitorConfig, StreamMonitor, WalOptions,
/// };
///
/// let dir = std::env::temp_dir().join(format!("sitfact-durable-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let schema = SchemaBuilder::new("gamelog")
///     .dimension("player")
///     .dimension("team")
///     .measure("points", Direction::HigherIsBetter)
///     .build()
///     .unwrap();
/// let config = MonitorConfig::default().with_tau(1.0);
/// let fresh = || FactMonitor::new(schema.clone(), STopDown::new(&schema, config.discovery), config);
///
/// // First life: every accepted window is logged before it is acked.
/// let (mut monitor, _) = DurableMonitor::open(&dir, fresh(), WalOptions::default()).unwrap();
/// monitor.ingest_raw(&["Wesley", "Celtics"], vec![12.0]).unwrap();
/// monitor.ingest_raw(&["Sherman", "Hawks"], vec![9.0]).unwrap();
/// drop(monitor); // crash or shutdown — no flush step required
///
/// // Second life: recovery replays the log into a fresh monitor.
/// let (monitor, recovery) = DurableMonitor::open(&dir, fresh(), WalOptions::default()).unwrap();
/// assert_eq!(monitor.len(), 2);
/// assert_eq!(recovery.replayed_rows, 2);
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
pub struct DurableMonitor<M: StreamMonitor> {
    inner: M,
    log: ArrivalLog,
    dir: PathBuf,
    opts: WalOptions,
    last_report: Option<ArrivalReport>,
    rows_since_snapshot: u64,
    broken: bool,
}

impl<M: StreamMonitor> DurableMonitor<M> {
    /// Opens (or creates) the durable state in `dir` and rebuilds `inner`
    /// from it: the newest intact snapshot is restored (if `inner` supports
    /// it), then the log suffix behind the snapshot is replayed. `inner`
    /// must be freshly constructed (empty) with the same schema and
    /// configuration as the monitor that wrote the directory.
    pub fn open(
        dir: impl AsRef<Path>,
        inner: M,
        opts: WalOptions,
    ) -> Result<(Self, RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut inner = inner;
        if !inner.is_empty() {
            return Err(SitFactError::InvalidConfig(
                "durable recovery needs an empty monitor to rebuild into".to_string(),
            ));
        }

        // Newest intact snapshot wins; a corrupt one degrades to an older
        // snapshot, and a monitor without snapshot support to full replay.
        let mut snapshot_rows = 0u64;
        let mut last_report = None;
        for (named_rows, path) in list_snapshots(&dir)? {
            let Ok(bytes) = fs::read(&path) else { continue };
            let Ok((covered, report, blob)) = parse_snapshot(&bytes) else {
                continue;
            };
            if covered != named_rows {
                continue;
            }
            match inner.restore_durable(&blob) {
                Ok(true) => {
                    snapshot_rows = covered;
                    last_report = report;
                    break;
                }
                Ok(false) => break, // unsupported — full-log replay
                Err(_) => continue, // corrupt or mismatched — try older
            }
        }

        let (log, scanned) = ArrivalLog::open(&dir, opts.sync, opts.segment_bytes)?;
        let mut replayed_windows = 0u64;
        let mut replayed_rows = 0u64;
        for window in &scanned.windows {
            if window.first_id + window.rows.len() as u64 <= snapshot_rows {
                continue;
            }
            let reports = replay_window(&mut inner, window)?;
            if let Some(report) = reports.last() {
                last_report = Some(report.clone());
            }
            replayed_windows += 1;
            replayed_rows += window.rows.len() as u64;
        }

        let report = RecoveryReport {
            snapshot_rows,
            replayed_windows,
            replayed_rows,
            dropped_bytes: scanned.dropped_bytes,
        };
        Ok((
            DurableMonitor {
                inner,
                log,
                dir,
                opts,
                last_report,
                rows_since_snapshot: replayed_rows,
                broken: false,
            },
            report,
        ))
    }

    /// Read access to the wrapped monitor.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Unwraps into the inner monitor, abandoning the log handle.
    pub fn into_inner(self) -> M {
        self.inner
    }

    /// The data directory holding log segments and snapshots.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options this monitor was opened with.
    pub fn options(&self) -> &WalOptions {
        &self.opts
    }

    /// The report of the most recently acknowledged arrival, surviving
    /// recovery (restored from the snapshot or reproduced by replay).
    pub fn last_report(&self) -> Option<&ArrivalReport> {
        self.last_report.as_ref()
    }

    /// Takes a full-state snapshot now, bounding future recovery replay to
    /// the log suffix behind it. Returns `Ok(false)` when the inner monitor
    /// cannot export full state (recovery then replays the whole log).
    ///
    /// The snapshot is written to a temporary file, fsynced, and renamed
    /// into place, so a crash mid-snapshot leaves the previous snapshot
    /// intact. Older snapshots are pruned afterwards — the log is never
    /// truncated, so this cannot lose data.
    pub fn snapshot_now(&mut self) -> Result<bool> {
        let Some(blob) = self.inner.export_durable() else {
            return Ok(false);
        };
        let covered = self.inner.len() as u64;
        let mut payload = Vec::with_capacity(blob.len() + 64);
        wal::put_u64(&mut payload, covered);
        match &self.last_report {
            Some(report) => {
                payload.push(1);
                encode_report(report, &mut payload);
            }
            None => payload.push(0),
        }
        wal::put_bytes(&mut payload, &blob);
        let mut framed = Vec::with_capacity(payload.len() + 8);
        wal::write_frame(&mut framed, &payload)?;

        let tmp = self.dir.join("snapshot.tmp");
        let final_path = self.dir.join(snapshot_name(covered));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&framed)?;
            file.sync_data()?;
        }
        fs::rename(&tmp, &final_path)?;
        for (rows, path) in list_snapshots(&self.dir)? {
            if rows != covered {
                let _ = fs::remove_file(path);
            }
        }
        // The snapshot is durably in place: closed log segments whose
        // windows it fully covers are dead weight — recovery skips them —
        // so retire (delete) them. Only now, after the rename: a crash
        // before this point still recovers from the previous snapshot plus
        // the intact log.
        self.log.retire_covered(covered)?;
        self.rows_since_snapshot = 0;
        Ok(true)
    }

    /// The shared ingest core: validate → render raw rows → append to the
    /// log (the ack barrier) → ingest into the wrapped monitor → maybe
    /// snapshot.
    fn log_and_ingest(&mut self, tuples: &[Tuple]) -> Result<Vec<ArrivalReport>> {
        if self.broken {
            return Err(SitFactError::Io(
                "durable monitor is failed: a logged window was not applied; reopen to recover"
                    .to_string(),
            ));
        }
        if tuples.is_empty() {
            return Ok(Vec::new());
        }
        let schema = self.inner.schema();
        let mut rows = Vec::with_capacity(tuples.len());
        for tuple in tuples {
            tuple.validate(schema)?;
            let mut dims = Vec::with_capacity(tuple.dims().len());
            for (d, &id) in tuple.dims().iter().enumerate() {
                let value = schema.resolve_dim(d, id).ok_or_else(|| {
                    SitFactError::InvalidTuple(format!(
                        "dimension value id {id} has no entry in attribute {d}'s dictionary"
                    ))
                })?;
                dims.push(value.to_string());
            }
            rows.push(LoggedRow {
                dims,
                measures: tuple.measures().to_vec(),
            });
        }
        let record = WindowRecord {
            first_id: self.inner.len() as u64,
            rows,
        };
        self.log.append(&record)?;
        let reports = match self.inner.ingest_batch_slice(tuples) {
            Ok(reports) => reports,
            Err(err) => {
                // The log is now ahead of the monitor (the window was
                // durably appended but not applied); in-process state can
                // no longer be trusted to stay aligned with the log, so
                // refuse further ingest until a reopen replays the log.
                // Pre-validation above makes this path unreachable for
                // validation failures.
                self.broken = true;
                return Err(err);
            }
        };
        if let Some(last) = reports.last() {
            self.last_report = Some(last.clone());
        }
        self.rows_since_snapshot += tuples.len() as u64;
        if let Some(every) = self.opts.snapshot_every {
            if self.rows_since_snapshot >= every {
                self.snapshot_now()?;
            }
        }
        Ok(reports)
    }
}

impl<M: StreamMonitor> StreamMonitor for DurableMonitor<M> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn config(&self) -> &MonitorConfig {
        self.inner.config()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn tuple(&self, tuple_id: TupleId) -> Option<TupleRef<'_>> {
        self.inner.tuple(tuple_id)
    }

    fn encode_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<Tuple> {
        self.inner.encode_raw(dims, measures)
    }

    fn ingest(&mut self, tuple: Tuple) -> Result<ArrivalReport> {
        let mut reports = self.log_and_ingest(std::slice::from_ref(&tuple))?;
        reports
            .pop()
            .ok_or_else(|| SitFactError::Io("ingest of one tuple produced no report".to_string()))
    }

    fn ingest_batch_slice(&mut self, tuples: &[Tuple]) -> Result<Vec<ArrivalReport>> {
        self.log_and_ingest(tuples)
    }

    fn live_rows(&self) -> usize {
        self.inner.live_rows()
    }

    fn tombstone_rows(&self) -> usize {
        self.inner.tombstone_rows()
    }

    fn evicted_rows(&self) -> usize {
        self.inner.evicted_rows()
    }

    // evict_prefix deliberately keeps the erroring default: an eviction the
    // log does not encode could not be re-applied by replay, so recovered
    // state would diverge from the live monitor. Window-policy evictions
    // compose correctly the other way around —
    // `DurableMonitor<WindowedMonitor<…>>` — because the wrapper inside
    // evicts at the logged batch boundaries replay re-feeds.

    fn posting_stats(&self) -> PostingIndexStats {
        self.inner.posting_stats()
    }

    fn export_durable(&self) -> Option<Vec<u8>> {
        self.inner.export_durable()
    }

    // restore_durable deliberately keeps the `Ok(false)` default: restoring
    // state out-of-band would desynchronize monitor and log. Recovery goes
    // through `DurableMonitor::open`.

    fn wal_stats(&self) -> WalStats {
        self.log.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::FactMonitor;
    use crate::sharded::ShardedMonitor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sitfact_algos::STopDown;
    use sitfact_core::{Direction, DiscoveryConfig, Schema, SchemaBuilder, UNBOUND};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sitfact-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn schema() -> Schema {
        SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .dimension("month")
            .measure("points", Direction::HigherIsBetter)
            .measure("assists", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    fn config() -> MonitorConfig {
        MonitorConfig::default().with_tau(1.0)
    }

    fn fresh(schema: &Schema, config: MonitorConfig) -> FactMonitor<STopDown> {
        FactMonitor::new(
            schema.clone(),
            STopDown::new(schema, config.discovery),
            config,
        )
    }

    /// Deterministic raw stream: `n` rows over small value domains.
    fn raw_rows(seed: u64, n: usize) -> Vec<(Vec<String>, Vec<f64>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let dims = vec![
                    format!("p{}", rng.gen_range(0..7u32)),
                    format!("t{}", rng.gen_range(0..3u32)),
                    format!("m{}", rng.gen_range(0..2u32)),
                ];
                let measures = vec![
                    f64::from(rng.gen_range(0..40u32)),
                    f64::from(rng.gen_range(0..15u32)),
                ];
                (dims, measures)
            })
            .collect()
    }

    /// Feeds `rows` in windows of `window` through the monitor's batch path.
    fn feed(
        monitor: &mut (impl StreamMonitor + ?Sized),
        rows: &[(Vec<String>, Vec<f64>)],
        window: usize,
    ) -> Vec<ArrivalReport> {
        let mut reports = Vec::new();
        for chunk in rows.chunks(window.max(1)) {
            let tuples: Vec<Tuple> = chunk
                .iter()
                .map(|(dims, measures)| {
                    let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                    monitor.encode_raw(&dims, measures.clone()).unwrap()
                })
                .collect();
            reports.extend(monitor.ingest_batch_slice(&tuples).unwrap());
        }
        reports
    }

    #[test]
    fn report_codec_roundtrip() {
        let report = ArrivalReport {
            tuple_id: 41,
            facts: vec![
                RankedFact {
                    pair: SkylinePair::new(
                        Constraint::from_values(vec![3, UNBOUND, 1]),
                        SubspaceMask(0b11),
                    ),
                    context_size: 12,
                    skyline_size: 2,
                },
                RankedFact {
                    pair: SkylinePair::new(
                        Constraint::from_values(vec![UNBOUND, UNBOUND, UNBOUND]),
                        SubspaceMask(0b01),
                    ),
                    context_size: 40,
                    skyline_size: 5,
                },
            ],
            prominent_count: 1,
        };
        let mut buf = Vec::new();
        encode_report(&report, &mut buf);
        let mut cur = ByteCursor::new(&buf);
        let decoded = decode_report(&mut cur).unwrap();
        assert!(cur.is_empty());
        assert_eq!(decoded, report);
    }

    #[test]
    fn kill_and_recover_is_byte_identical() {
        let dir = temp_dir("kill");
        let schema = schema();
        let config = config();
        let rows = raw_rows(7, 60);

        // Ground truth: a never-crashed, never-logged monitor.
        let mut reference = fresh(&schema, config);
        let mut expected = feed(&mut reference, &rows[..40], 8);

        // First life: logged monitor, same stream, then a simulated crash
        // (no Drop, no flush call — the per-window write is the only ack).
        let (mut durable, recovery) =
            DurableMonitor::open(&dir, fresh(&schema, config), WalOptions::default()).unwrap();
        assert_eq!(recovery, RecoveryReport::default());
        let live = feed(&mut durable, &rows[..40], 8);
        assert_eq!(live, expected, "logging must not change reports");
        std::mem::forget(durable);

        // Second life: recovered monitor must be indistinguishable.
        let (mut recovered, recovery) =
            DurableMonitor::open(&dir, fresh(&schema, config), WalOptions::default()).unwrap();
        assert_eq!(recovery.replayed_rows, 40);
        assert_eq!(recovery.dropped_bytes, 0);
        assert_eq!(recovered.len(), reference.len());
        assert_eq!(
            recovered.last_report(),
            expected.last(),
            "last acknowledged report must survive recovery"
        );
        assert_eq!(recovered.posting_stats(), reference.posting_stats());

        // Byte-identical behaviour from here on: same reports for the rest
        // of the stream.
        expected.extend(feed(&mut reference, &rows[40..], 8));
        let resumed = feed(&mut recovered, &rows[40..], 8);
        assert_eq!(resumed, expected[40..], "post-recovery reports must match");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retired_segments_do_not_break_recovery() {
        let dir = temp_dir("retire");
        let schema = schema();
        let config = config();
        let rows = raw_rows(23, 240);
        // Small segments + periodic snapshots: segments rotate, snapshots
        // cover them, and `snapshot_now` retires the covered files.
        let opts = WalOptions::default()
            .with_sync(SyncPolicy::Os)
            .with_snapshot_every(40)
            .with_segment_bytes(4096);

        let mut reference = fresh(&schema, config);
        let mut expected = feed(&mut reference, &rows[..200], 8);

        let (mut durable, _) = DurableMonitor::open(&dir, fresh(&schema, config), opts).unwrap();
        let live = feed(&mut durable, &rows[..200], 8);
        assert_eq!(live, expected, "retirement must not change reports");
        let stats = durable.wal_stats();
        assert!(
            stats.retired_segments > 0,
            "segments must rotate and retire: {stats:?}"
        );
        std::mem::forget(durable);

        // Kill-and-recover on the retired log: the newest snapshot plus the
        // surviving segment suffix reconstruct the exact state.
        let (mut recovered, recovery) =
            DurableMonitor::open(&dir, fresh(&schema, config), opts).unwrap();
        assert!(recovery.snapshot_rows > 0);
        assert_eq!(recovery.snapshot_rows + recovery.replayed_rows, 200);
        assert_eq!(recovery.dropped_bytes, 0);
        assert_eq!(recovered.len(), reference.len());
        assert_eq!(recovered.posting_stats(), reference.posting_stats());
        assert_eq!(recovered.last_report(), expected.last());
        expected.extend(feed(&mut reference, &rows[200..], 8));
        let resumed = feed(&mut recovered, &rows[200..], 8);
        assert_eq!(resumed, expected[200..], "post-recovery reports must match");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn windowed_durable_kill_and_recover_is_byte_identical() {
        use crate::window::{WindowPolicy, WindowedMonitor};
        let dir = temp_dir("windowed");
        let schema = schema();
        let config = config();
        let rows = raw_rows(29, 90);
        let policy = WindowPolicy::count(24).unwrap();
        let opts = WalOptions::default()
            .with_sync(SyncPolicy::Os)
            .with_snapshot_every(32);

        // Ground truth: a windowed monitor that never crashed, never logged.
        let mut reference = WindowedMonitor::new(fresh(&schema, config), policy);
        let mut expected = feed(&mut reference, &rows[..60], 7);

        let (mut durable, _) = DurableMonitor::open(
            &dir,
            WindowedMonitor::new(fresh(&schema, config), policy),
            opts,
        )
        .unwrap();
        let live = feed(&mut durable, &rows[..60], 7);
        assert_eq!(live, expected, "logging must not disturb the window");
        assert_eq!(durable.live_rows(), 24);
        std::mem::forget(durable);

        // Replay re-feeds the logged batch boundaries, so the wrapper inside
        // re-applies the same evictions at the same instants — no eviction
        // records exist in the log.
        let (mut recovered, recovery) = DurableMonitor::open(
            &dir,
            WindowedMonitor::new(fresh(&schema, config), policy),
            opts,
        )
        .unwrap();
        assert!(recovery.snapshot_rows > 0, "snapshots must cover evictions");
        assert_eq!(recovered.len(), reference.len());
        assert_eq!(recovered.live_rows(), reference.live_rows());
        assert_eq!(recovered.evicted_rows(), reference.evicted_rows());
        assert_eq!(recovered.posting_stats(), reference.posting_stats());
        assert_eq!(recovered.last_report(), expected.last());
        expected.extend(feed(&mut reference, &rows[60..], 7));
        let resumed = feed(&mut recovered, &rows[60..], 7);
        assert_eq!(resumed, expected[60..], "post-recovery reports must match");
        recovered.inner().inner().audit().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshots_bound_replay() {
        let dir = temp_dir("snapbound");
        let schema = schema();
        let config = config();
        let rows = raw_rows(11, 48);
        let opts = WalOptions::default().with_snapshot_every(10);

        let (mut durable, _) = DurableMonitor::open(&dir, fresh(&schema, config), opts).unwrap();
        feed(&mut durable, &rows, 6);
        std::mem::forget(durable);

        let (recovered, recovery) =
            DurableMonitor::open(&dir, fresh(&schema, config), opts).unwrap();
        assert!(
            recovery.snapshot_rows > 0,
            "a snapshot must have been taken"
        );
        assert!(
            recovery.replayed_rows < rows.len() as u64,
            "snapshot must bound replay ({} replayed)",
            recovery.replayed_rows
        );
        assert_eq!(
            recovery.snapshot_rows + recovery.replayed_rows,
            rows.len() as u64
        );
        // Snapshot restore must land on the same state as pure replay.
        let mut replayed = fresh(&schema, config);
        let expected = feed(&mut replayed, &rows, 6);
        assert_eq!(recovered.len(), replayed.len());
        assert_eq!(recovered.posting_stats(), replayed.posting_stats());
        assert_eq!(recovered.last_report(), expected.last());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_degrades_to_full_replay() {
        let dir = temp_dir("snapcorrupt");
        let schema = schema();
        let config = config();
        let rows = raw_rows(13, 30);
        let opts = WalOptions::default().with_snapshot_every(10);

        let (mut durable, _) = DurableMonitor::open(&dir, fresh(&schema, config), opts).unwrap();
        feed(&mut durable, &rows, 5);
        std::mem::forget(durable);

        // Flip a byte in the middle of every snapshot file.
        let mut corrupted = 0;
        for (_, path) in list_snapshots(&dir).unwrap() {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, bytes).unwrap();
            corrupted += 1;
        }
        assert!(corrupted > 0);

        let (recovered, recovery) =
            DurableMonitor::open(&dir, fresh(&schema, config), opts).unwrap();
        assert_eq!(
            recovery.snapshot_rows, 0,
            "corrupt snapshot must be ignored"
        );
        assert_eq!(recovery.replayed_rows, rows.len() as u64);
        let mut replayed = fresh(&schema, config);
        feed(&mut replayed, &rows, 5);
        assert_eq!(recovered.len(), replayed.len());
        assert_eq!(recovered.posting_stats(), replayed.posting_stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovers_valid_prefix() {
        let dir = temp_dir("torn");
        let schema = schema();
        let config = config();
        let rows = raw_rows(17, 24);

        let (mut durable, _) =
            DurableMonitor::open(&dir, fresh(&schema, config), WalOptions::default()).unwrap();
        feed(&mut durable, &rows, 4);
        let stats = durable.wal_stats();
        std::mem::forget(durable);

        // Tear the last segment mid-frame: chop 5 bytes off the end.
        let segments: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let path = e.unwrap().path();
                (path.extension().is_some_and(|x| x == "log")).then_some(path)
            })
            .collect();
        let last = segments.iter().max().unwrap();
        let bytes = std::fs::read(last).unwrap();
        std::fs::write(last, &bytes[..bytes.len() - 5]).unwrap();
        assert_eq!(stats.durable_rows, 24);

        let (recovered, recovery) =
            DurableMonitor::open(&dir, fresh(&schema, config), WalOptions::default()).unwrap();
        assert!(recovery.dropped_bytes > 0, "the torn tail must be reported");
        assert_eq!(
            recovery.replayed_rows, 20,
            "the last 4-row window sits in the torn frame"
        );
        // The recovered prefix matches a monitor that never saw the torn
        // window.
        let mut replayed = fresh(&schema, config);
        feed(&mut replayed, &rows[..20], 4);
        assert_eq!(recovered.len(), replayed.len());
        assert_eq!(recovered.posting_stats(), replayed.posting_stats());

        // And the log keeps accepting appends after the truncation.
        let mut recovered = recovered;
        let more = feed(&mut recovered, &rows[20..], 4);
        assert_eq!(more.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_checksum_stops_replay_without_panic() {
        let dir = temp_dir("crc");
        let schema = schema();
        let config = config();
        let rows = raw_rows(19, 12);

        let (mut durable, _) =
            DurableMonitor::open(&dir, fresh(&schema, config), WalOptions::default()).unwrap();
        feed(&mut durable, &rows, 3);
        std::mem::forget(durable);

        // Corrupt one payload byte of the second frame in the first segment.
        let segment = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let path = e.unwrap().path();
                (path.extension().is_some_and(|x| x == "log")).then_some(path)
            })
            .min()
            .unwrap();
        let mut bytes = std::fs::read(&segment).unwrap();
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload = 8 + first_len + 8;
        bytes[second_payload] ^= 0x01;
        std::fs::write(&segment, bytes).unwrap();

        let (recovered, recovery) =
            DurableMonitor::open(&dir, fresh(&schema, config), WalOptions::default()).unwrap();
        assert_eq!(recovery.replayed_rows, 3, "replay stops at the bad frame");
        assert!(recovery.dropped_bytes > 0);
        assert_eq!(recovered.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn broken_after_divergence_refuses_ingest() {
        let dir = temp_dir("broken");
        let schema = schema();
        let config = config();
        let (mut durable, _) =
            DurableMonitor::open(&dir, fresh(&schema, config), WalOptions::default()).unwrap();
        // A tuple that passes pre-validation cannot make the inner ingest
        // fail, so force the flag directly to pin the refusal behaviour.
        durable.broken = true;
        let tuple = Tuple::new(vec![0, 0, 0], vec![1.0, 1.0]);
        assert!(matches!(durable.ingest(tuple), Err(SitFactError::Io(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_window_is_not_logged() {
        let dir = temp_dir("empty");
        let schema = schema();
        let config = config();
        let (mut durable, _) =
            DurableMonitor::open(&dir, fresh(&schema, config), WalOptions::default()).unwrap();
        assert_eq!(durable.ingest_batch_slice(&[]).unwrap(), Vec::new());
        assert_eq!(durable.wal_stats().durable_rows, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejected_window_is_not_logged() {
        let dir = temp_dir("rejected");
        let schema = schema();
        let config = config();
        let (mut durable, _) =
            DurableMonitor::open(&dir, fresh(&schema, config), WalOptions::default()).unwrap();
        let bad = Tuple::new(vec![0], vec![1.0]); // wrong arity
        assert!(durable.ingest(bad).is_err());
        assert_eq!(durable.wal_stats().durable_rows, 0, "nothing may be logged");
        assert!(
            !durable.broken,
            "a pre-validation failure is not divergence"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The resharding property: replaying one arrival log into sharded
    /// monitors with different shard counts reproduces the original
    /// (anchored) monitor's reports exactly, over random schemas, streams,
    /// window sizes, and snapshot intervals.
    #[test]
    fn resharded_replay_is_equivalent_to_original() {
        let mut rng = StdRng::seed_from_u64(0xD00D);
        for case in 0..6 {
            let dir = temp_dir(&format!("reshard-{case}"));
            let n_dims = rng.gen_range(2..4usize);
            let n_measures = rng.gen_range(1..3usize);
            let mut builder = SchemaBuilder::new("reshard");
            for d in 0..n_dims {
                builder = builder.dimension(format!("d{d}"));
            }
            for m in 0..n_measures {
                builder = builder.measure(format!("v{m}"), Direction::HigherIsBetter);
            }
            let schema = builder.build().unwrap();
            let anchor = rng.gen_range(0..n_dims);
            let config = MonitorConfig::default()
                .with_tau(1.0)
                .with_discovery(DiscoveryConfig::default().with_anchor(anchor));
            let window = rng.gen_range(1..7usize);
            let n_rows = rng.gen_range(20..45usize);
            let rows: Vec<(Vec<String>, Vec<f64>)> = (0..n_rows)
                .map(|_| {
                    let dims = (0..n_dims)
                        .map(|d| format!("d{d}v{}", rng.gen_range(0..4u32)))
                        .collect();
                    let measures = (0..n_measures)
                        .map(|_| f64::from(rng.gen_range(0..25u32)))
                        .collect();
                    (dims, measures)
                })
                .collect();
            let snapshot_every = rng.gen_range(5..20u64);
            let opts = WalOptions::default().with_snapshot_every(snapshot_every);

            // Original: a durable unsharded monitor with an anchored config.
            let (mut original, _) =
                DurableMonitor::open(&dir, fresh(&schema, config), opts).unwrap();
            let expected = feed(&mut original, &rows, window);
            drop(original);

            // Replay the raw log into sharded monitors of varying widths.
            let routing_attr = format!("d{anchor}");
            for shards in [1usize, 2, 3] {
                let mut sharded = ShardedMonitor::by_attribute(
                    schema.clone(),
                    &routing_attr,
                    shards,
                    config,
                    STopDown::new,
                )
                .unwrap();
                let outcome = replay_log(&dir, &mut sharded).unwrap();
                assert_eq!(outcome.rows, n_rows as u64);
                assert_eq!(outcome.dropped_bytes, 0);
                assert_eq!(
                    outcome.reports, expected,
                    "case {case}: {shards}-shard replay must reproduce the original reports"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Recovery must land on identical state regardless of the snapshot
    /// interval the directory was written with.
    #[test]
    fn recovery_state_is_independent_of_snapshot_interval() {
        let schema = schema();
        let config = config();
        let rows = raw_rows(23, 36);
        let mut baseline = fresh(&schema, config);
        let expected = feed(&mut baseline, &rows, 5);

        for (tag, opts) in [
            ("nosnap", WalOptions::default()),
            ("snap7", WalOptions::default().with_snapshot_every(7)),
            ("snap50", WalOptions::default().with_snapshot_every(50)),
        ] {
            let dir = temp_dir(&format!("interval-{tag}"));
            let (mut durable, _) =
                DurableMonitor::open(&dir, fresh(&schema, config), opts).unwrap();
            feed(&mut durable, &rows, 5);
            std::mem::forget(durable);
            let (recovered, _) = DurableMonitor::open(&dir, fresh(&schema, config), opts).unwrap();
            assert_eq!(recovered.len(), baseline.len(), "{tag}");
            assert_eq!(recovered.posting_stats(), baseline.posting_stats(), "{tag}");
            assert_eq!(recovered.last_report(), expected.last(), "{tag}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn boxed_monitor_can_be_wrapped() {
        let dir = temp_dir("boxed");
        let schema = schema();
        let config = config();
        let boxed: Box<dyn StreamMonitor + Send> = Box::new(fresh(&schema, config));
        let (mut durable, _) = DurableMonitor::open(&dir, boxed, WalOptions::default()).unwrap();
        durable
            .ingest_raw(&["p1", "t1", "m0"], vec![3.0, 1.0])
            .unwrap();
        assert_eq!(durable.len(), 1);
        assert_eq!(durable.wal_stats().durable_rows, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
