//! Aggregate statistics over prominent facts: the macro-level views of the
//! paper's case study (Figs. 14 and 15).

use crate::fact::ArrivalReport;
use serde::{Deserialize, Serialize};

/// Accumulates, over a processed stream, the number of prominent facts broken
/// down the way the paper plots them:
///
/// * per window of `window` arriving tuples (Fig. 14),
/// * by the number of bound dimension attributes of the constraint (Fig. 15a),
/// * by the dimensionality of the measure subspace (Fig. 15b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionStats {
    /// Window size in tuples (the paper uses 1,000).
    pub window: usize,
    /// Number of prominent facts in each consecutive window.
    pub per_window: Vec<u64>,
    /// `by_bound[k]`: prominent facts whose constraint binds `k` attributes.
    pub by_bound: Vec<u64>,
    /// `by_measure_dims[k]`: prominent facts whose subspace has `k` measures
    /// (index 0 is unused).
    pub by_measure_dims: Vec<u64>,
    /// Total number of tuples observed.
    pub tuples_seen: u64,
    /// Total number of prominent facts observed.
    pub total_prominent: u64,
}

impl DistributionStats {
    /// Creates an empty accumulator for schemas with at most `max_bound` bound
    /// attributes and `max_measures` measure attributes, counting per-window
    /// totals over windows of `window` tuples.
    pub fn new(window: usize, max_bound: usize, max_measures: usize) -> Self {
        DistributionStats {
            window: window.max(1),
            per_window: Vec::new(),
            by_bound: vec![0; max_bound + 1],
            by_measure_dims: vec![0; max_measures + 1],
            tuples_seen: 0,
            total_prominent: 0,
        }
    }

    /// Folds one arrival report into the distribution.
    pub fn record(&mut self, report: &ArrivalReport) {
        let window_index = (self.tuples_seen as usize) / self.window;
        if self.per_window.len() <= window_index {
            self.per_window.resize(window_index + 1, 0);
        }
        self.tuples_seen += 1;
        for fact in report.prominent() {
            self.per_window[window_index] += 1;
            self.total_prominent += 1;
            let bound = fact.pair.constraint.bound_count();
            if bound < self.by_bound.len() {
                self.by_bound[bound] += 1;
            }
            let dims = fact.pair.subspace.len();
            if dims < self.by_measure_dims.len() {
                self.by_measure_dims[dims] += 1;
            }
        }
    }

    /// Average number of prominent facts per window (the level of Fig. 14).
    pub fn mean_per_window(&self) -> f64 {
        if self.per_window.is_empty() {
            0.0
        } else {
            self.total_prominent as f64 / self.per_window.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::RankedFact;
    use sitfact_core::{Constraint, SkylinePair, SubspaceMask, UNBOUND};

    fn report(prominent: Vec<RankedFact>) -> ArrivalReport {
        let count = prominent.len();
        ArrivalReport {
            tuple_id: 0,
            facts: prominent,
            prominent_count: count,
        }
    }

    fn fact(bound_values: Vec<u32>, subspace: SubspaceMask) -> RankedFact {
        RankedFact {
            pair: SkylinePair::new(Constraint::from_values(bound_values), subspace),
            context_size: 1000,
            skyline_size: 1,
        }
    }

    #[test]
    fn accumulates_by_window_bound_and_dims() {
        let mut stats = DistributionStats::new(2, 3, 3);
        // Tuple 1: one prominent fact with 1 bound attr and 2 measures.
        stats.record(&report(vec![fact(
            vec![1, UNBOUND, UNBOUND],
            SubspaceMask(0b011),
        )]));
        // Tuple 2: two prominent facts.
        stats.record(&report(vec![
            fact(vec![1, 2, UNBOUND], SubspaceMask(0b001)),
            fact(vec![UNBOUND, UNBOUND, UNBOUND], SubspaceMask(0b111)),
        ]));
        // Tuple 3 (new window): none.
        stats.record(&report(vec![]));

        assert_eq!(stats.tuples_seen, 3);
        assert_eq!(stats.total_prominent, 3);
        assert_eq!(stats.per_window, vec![3, 0]);
        assert_eq!(stats.by_bound, vec![1, 1, 1, 0]);
        assert_eq!(stats.by_measure_dims, vec![0, 1, 1, 1]);
        assert!((stats.mean_per_window() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_distribution() {
        let stats = DistributionStats::new(1000, 5, 7);
        assert_eq!(stats.mean_per_window(), 0.0);
        assert_eq!(stats.total_prominent, 0);
        assert_eq!(stats.by_bound.len(), 6);
        assert_eq!(stats.by_measure_dims.len(), 8);
    }

    #[test]
    fn window_of_zero_is_clamped() {
        let stats = DistributionStats::new(0, 1, 1);
        assert_eq!(stats.window, 1);
    }
}
