//! Sliding-window wrapper: [`WindowedMonitor`] bounds any
//! [`StreamMonitor`] to its most recent arrivals.
//!
//! The paper's monitors are append-only: every arrival stays in the context
//! of every later one, so a long-lived stream grows without bound. A
//! *sliding-window* deployment instead asks for facts relative to the recent
//! past — "most points among active players this season", not "ever". This
//! module provides that as a composition, not a new monitor: the wrapper
//! ingests through the inner monitor unchanged and, at every batch boundary,
//! retracts whatever fell off the back of the window via
//! [`StreamMonitor::evict_prefix`].
//!
//! # Batch = one logical instant
//!
//! Eviction is enforced only *between* batches, never inside one: every
//! arrival of a window sees the full pre-batch history plus its in-batch
//! predecessors, exactly as the append-only batched protocol defines. A
//! sequential [`StreamMonitor::ingest`] call is a batch of one. Under a
//! bounded policy the report stream is therefore a function of the batch
//! partitioning (a coarser split defers eviction), which is precisely what
//! makes crash recovery deterministic: the durability layer
//! ([`DurableMonitor`](crate::DurableMonitor)) replays the *logged* window
//! boundaries, so a recovered `DurableMonitor<WindowedMonitor<…>>` re-applies
//! the same evictions at the same instants without any eviction records in
//! the log.
//!
//! # Equivalence contract
//!
//! After any batch, the wrapped monitor's observable state — reports for all
//! future arrivals, deep-audit state, snapshot bytes — equals that of a
//! fresh monitor (id space aligned via
//! [`FactMonitor::with_base`](crate::FactMonitor::with_base)) fed only the
//! surviving suffix. The `windowed_monitor_equals_rebuild_from_suffix`
//! property test in `tests/property_tests.rs` checks this over random
//! schemas, window lengths and batch splits.

use crate::fact::ArrivalReport;
use crate::monitor::MonitorConfig;
use crate::stream::StreamMonitor;
use sitfact_core::{Result, Schema, SitFactError, Tuple, TupleId, TupleRef};
use sitfact_storage::{PostingIndexStats, WalStats};

/// How much history a [`WindowedMonitor`] retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowPolicy {
    /// Keep everything — the wrapper is a transparent pass-through. Useful
    /// so "windowed or not" is a runtime value (the serve layer's `OPEN`
    /// clause), not a type.
    Unbounded,
    /// Keep the most recent `n` arrivals: after each batch, everything older
    /// is retracted. Constructed via [`WindowPolicy::count`], which rejects 0.
    CountWindow(usize),
}

impl WindowPolicy {
    /// A count-bounded window keeping the latest `n` arrivals.
    ///
    /// Rejects `n = 0`: a monitor that evicts every tuple it ingests would
    /// report facts about an always-empty relation, which is never what a
    /// caller meant.
    pub fn count(n: usize) -> Result<WindowPolicy> {
        if n == 0 {
            return Err(SitFactError::InvalidConfig(
                "a count window must keep at least one arrival (got 0)".to_string(),
            ));
        }
        Ok(WindowPolicy::CountWindow(n))
    }

    /// Builds a policy from an optional row limit — the shape the serve
    /// layer's `OPEN` clause carries (`None` ⇒ unbounded).
    pub fn from_limit(limit: Option<u64>) -> Result<WindowPolicy> {
        match limit {
            None => Ok(WindowPolicy::Unbounded),
            Some(n) => WindowPolicy::count(n as usize),
        }
    }

    /// The row limit, `None` for [`WindowPolicy::Unbounded`].
    pub fn limit(&self) -> Option<u64> {
        match self {
            WindowPolicy::Unbounded => None,
            WindowPolicy::CountWindow(n) => Some(*n as u64),
        }
    }
}

/// A [`StreamMonitor`] bounded to its most recent arrivals; see the
/// [module docs](self) for the eviction protocol and equivalence contract.
///
/// ```
/// use sitfact_core::{Direction, SchemaBuilder};
/// use sitfact_algos::STopDown;
/// use sitfact_prominence::{
///     FactMonitor, MonitorConfig, StreamMonitor, WindowPolicy, WindowedMonitor,
/// };
///
/// let schema = SchemaBuilder::new("gamelog")
///     .dimension("player")
///     .measure("points", Direction::HigherIsBetter)
///     .build()
///     .unwrap();
/// let config = MonitorConfig::default().with_tau(1.0);
/// let inner = FactMonitor::new(schema.clone(), STopDown::new(&schema, config.discovery), config);
/// let mut monitor = WindowedMonitor::new(inner, WindowPolicy::count(2).unwrap());
/// for points in [10.0, 12.0, 9.0, 11.0] {
///     monitor.ingest_raw(&["Wesley"], vec![points]).unwrap();
/// }
/// assert_eq!(monitor.len(), 4, "ids keep counting arrivals");
/// assert_eq!(monitor.live_rows(), 2, "only the window answers queries");
/// ```
#[derive(Debug)]
pub struct WindowedMonitor<M: StreamMonitor> {
    inner: M,
    policy: WindowPolicy,
}

impl<M: StreamMonitor> WindowedMonitor<M> {
    /// Wraps `inner` under `policy`. The inner monitor must support
    /// [`StreamMonitor::evict_prefix`] for bounded policies — an unsupported
    /// eviction surfaces as an error on the first boundary that needs one.
    pub fn new(inner: M, policy: WindowPolicy) -> Self {
        WindowedMonitor { inner, policy }
    }

    /// The policy this wrapper enforces.
    pub fn policy(&self) -> WindowPolicy {
        self.policy
    }

    /// The wrapped monitor (read access).
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Unwraps into the inner monitor.
    pub fn into_inner(self) -> M {
        self.inner
    }

    /// Batch-boundary enforcement: retract everything older than the most
    /// recent `n` arrivals. Returns the number of newly retracted tuples.
    fn enforce(&mut self) -> Result<usize> {
        if let WindowPolicy::CountWindow(n) = self.policy {
            let total = self.inner.len();
            if total > n {
                return self.inner.evict_prefix((total - n) as TupleId);
            }
        }
        Ok(0)
    }
}

impl<M: StreamMonitor> StreamMonitor for WindowedMonitor<M> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn config(&self) -> &MonitorConfig {
        self.inner.config()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn tuple(&self, tuple_id: TupleId) -> Option<TupleRef<'_>> {
        self.inner.tuple(tuple_id)
    }

    fn encode_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<Tuple> {
        self.inner.encode_raw(dims, measures)
    }

    fn ingest(&mut self, tuple: Tuple) -> Result<ArrivalReport> {
        let report = self.inner.ingest(tuple)?;
        self.enforce()?;
        Ok(report)
    }

    fn ingest_batch_slice(&mut self, tuples: &[Tuple]) -> Result<Vec<ArrivalReport>> {
        let reports = self.inner.ingest_batch_slice(tuples)?;
        if !tuples.is_empty() {
            self.enforce()?;
        }
        Ok(reports)
    }

    fn ingest_batch(&mut self, tuples: Vec<Tuple>) -> Result<Vec<ArrivalReport>> {
        let empty = tuples.is_empty();
        let reports = self.inner.ingest_batch(tuples)?;
        if !empty {
            self.enforce()?;
        }
        Ok(reports)
    }

    fn live_rows(&self) -> usize {
        self.inner.live_rows()
    }

    fn tombstone_rows(&self) -> usize {
        self.inner.tombstone_rows()
    }

    fn evicted_rows(&self) -> usize {
        self.inner.evicted_rows()
    }

    fn evict_prefix(&mut self, up_to: TupleId) -> Result<usize> {
        self.inner.evict_prefix(up_to)
    }

    fn posting_stats(&self) -> PostingIndexStats {
        self.inner.posting_stats()
    }

    fn export_durable(&self) -> Option<Vec<u8>> {
        // The inner snapshot already carries the retraction bookkeeping
        // (watermark, evicted prefix), and enforcement is a pure function of
        // `len`, so a restored monitor resumes the window where it left off.
        self.inner.export_durable()
    }

    fn restore_durable(&mut self, snapshot: &[u8]) -> Result<bool> {
        self.inner.restore_durable(snapshot)
    }

    fn wal_stats(&self) -> WalStats {
        self.inner.wal_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::FactMonitor;
    use sitfact_algos::STopDown;
    use sitfact_core::{Direction, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .measure("points", Direction::HigherIsBetter)
            .measure("assists", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    fn fact_monitor(schema: &Schema) -> FactMonitor<STopDown> {
        let config = MonitorConfig::default().with_tau(2.0);
        FactMonitor::new(
            schema.clone(),
            STopDown::new(schema, config.discovery),
            config,
        )
    }

    fn random_tuples(seed: u64, n: usize) -> Vec<Tuple> {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Tuple::new(
                    vec![rng.gen_range(0..4u32), rng.gen_range(0..3u32)],
                    vec![rng.gen_range(0..6) as f64, rng.gen_range(0..6) as f64],
                )
            })
            .collect()
    }

    #[test]
    fn policy_construction_and_limits() {
        assert!(WindowPolicy::count(0).is_err());
        assert_eq!(
            WindowPolicy::count(5).unwrap(),
            WindowPolicy::CountWindow(5)
        );
        assert_eq!(
            WindowPolicy::from_limit(None).unwrap(),
            WindowPolicy::Unbounded
        );
        assert_eq!(WindowPolicy::from_limit(Some(3)).unwrap().limit(), Some(3));
        assert!(WindowPolicy::from_limit(Some(0)).is_err());
        assert_eq!(WindowPolicy::Unbounded.limit(), None);
    }

    #[test]
    fn count_window_bounds_live_rows_per_arrival() {
        let schema = schema();
        let mut monitor =
            WindowedMonitor::new(fact_monitor(&schema), WindowPolicy::count(10).unwrap());
        for (i, t) in random_tuples(3, 30).into_iter().enumerate() {
            monitor.ingest(t).unwrap();
            assert_eq!(monitor.len(), i + 1);
            assert_eq!(monitor.live_rows(), (i + 1).min(10));
        }
        assert_eq!(monitor.evicted_rows() + monitor.tombstone_rows(), 20);
        monitor.inner().audit().unwrap();
    }

    #[test]
    fn unbounded_policy_is_a_pass_through() {
        let schema = schema();
        let mut monitor = WindowedMonitor::new(fact_monitor(&schema), WindowPolicy::Unbounded);
        let mut reference = fact_monitor(&schema);
        for t in random_tuples(5, 20) {
            let a = monitor.ingest(t.clone()).unwrap();
            let b = reference.ingest(t).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(monitor.live_rows(), 20);
        assert_eq!(monitor.tombstone_rows(), 0);
    }

    #[test]
    fn eviction_waits_for_the_batch_boundary() {
        let schema = schema();
        let tuples = random_tuples(11, 24);
        // One big batch through a window of 8: every arrival still sees its
        // full in-batch history (reports equal the append-only monitor's),
        // and the eviction lands once, after the batch.
        let mut windowed =
            WindowedMonitor::new(fact_monitor(&schema), WindowPolicy::count(8).unwrap());
        let mut reference = fact_monitor(&schema);
        let a = windowed.ingest_batch_slice(&tuples).unwrap();
        let b = reference.ingest_batch_slice(&tuples).unwrap();
        assert_eq!(a, b);
        assert_eq!(windowed.live_rows(), 8);
        assert_eq!(reference.live_rows(), 24);
        windowed.inner().audit().unwrap();
    }

    #[test]
    fn windowed_equals_rebuild_from_suffix() {
        let schema = schema();
        let config = MonitorConfig::default().with_tau(2.0);
        let tuples = random_tuples(17, 40);
        let mut windowed =
            WindowedMonitor::new(fact_monitor(&schema), WindowPolicy::count(12).unwrap());
        for window in tuples.chunks(7) {
            windowed.ingest_batch_slice(window).unwrap();
        }
        // A fresh monitor fed only the survivors, id space aligned.
        let base = (windowed.len() - windowed.live_rows()) as u32;
        let mut rebuilt = FactMonitor::with_base(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
            base,
        );
        let survivors: Vec<Tuple> = tuples[base as usize..].to_vec();
        rebuilt.ingest_batch_slice(&survivors).unwrap();
        // Future sequential arrivals report identically (windowed keeps
        // evicting; the rebuilt reference is evicted in lockstep through the
        // same wrapper).
        let mut rebuilt = WindowedMonitor::new(rebuilt, WindowPolicy::count(12).unwrap());
        for t in random_tuples(19, 10) {
            let a = windowed.ingest(t.clone()).unwrap();
            let b = rebuilt.ingest(t).unwrap();
            assert_eq!(a, b);
        }
        windowed.inner().audit().unwrap();
        rebuilt.inner().audit().unwrap();
    }

    #[test]
    fn bounded_policy_on_a_non_retractable_monitor_errors() {
        /// A minimal monitor without a retraction path.
        struct Fixed;
        impl StreamMonitor for Fixed {
            fn schema(&self) -> &Schema {
                unreachable!()
            }
            fn config(&self) -> &MonitorConfig {
                unreachable!()
            }
            fn len(&self) -> usize {
                5
            }
            fn tuple(&self, _: TupleId) -> Option<TupleRef<'_>> {
                None
            }
            fn encode_raw(&mut self, _: &[&str], _: Vec<f64>) -> Result<Tuple> {
                unreachable!()
            }
            fn ingest(&mut self, _: Tuple) -> Result<ArrivalReport> {
                Ok(ArrivalReport {
                    tuple_id: 0,
                    facts: Vec::new(),
                    prominent_count: 0,
                })
            }
            fn ingest_batch_slice(&mut self, _: &[Tuple]) -> Result<Vec<ArrivalReport>> {
                unreachable!()
            }
        }
        let mut monitor = WindowedMonitor::new(Fixed, WindowPolicy::count(2).unwrap());
        let err = monitor.ingest(Tuple::new(vec![0], vec![0.0])).unwrap_err();
        assert!(matches!(err, SitFactError::InvalidConfig(_)));
    }
}
