//! The [`FactMonitor`]: turn a stream of tuples into ranked situational facts.

use crate::fact::{ArrivalReport, RankedFact};
use sitfact_algos::Discovery;
use sitfact_core::{DiscoveryConfig, Result, Schema, Tuple};
use sitfact_storage::{ContextCounter, Table};

/// Configuration of a [`FactMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// The `d̂` / `m̂` caps forwarded to the discovery algorithm.
    pub discovery: DiscoveryConfig,
    /// Prominence threshold `τ`: a fact is *prominent* only if its prominence
    /// is at least this value (and is maximal among the arrival's facts).
    pub tau: f64,
    /// Retain at most this many ranked facts per arrival in the report (the
    /// full set is still used to determine the maximum). `None` keeps all.
    pub keep_top: Option<usize>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            discovery: DiscoveryConfig::unrestricted(),
            tau: 1.0,
            keep_top: None,
        }
    }
}

impl MonitorConfig {
    /// The configuration of the paper's case study: `d̂ = 3`, `m̂ = 3`,
    /// `τ = 500`.
    pub fn case_study() -> Self {
        MonitorConfig {
            discovery: DiscoveryConfig::capped(3, 3),
            tau: 500.0,
            keep_top: Some(32),
        }
    }

    /// Builder-style setter for `τ`.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Builder-style setter for the discovery caps.
    pub fn with_discovery(mut self, discovery: DiscoveryConfig) -> Self {
        self.discovery = discovery;
        self
    }

    /// Builder-style setter for the per-arrival fact retention limit.
    pub fn with_keep_top(mut self, keep: usize) -> Self {
        self.keep_top = Some(keep);
        self
    }
}

/// Owns the table, the context-cardinality counter and a discovery algorithm,
/// and produces one [`ArrivalReport`] per ingested tuple.
///
/// ```
/// use sitfact_core::{Direction, SchemaBuilder, DiscoveryConfig};
/// use sitfact_algos::SBottomUp;
/// use sitfact_prominence::{FactMonitor, MonitorConfig};
///
/// let schema = SchemaBuilder::new("gamelog")
///     .dimension("player").dimension("team")
///     .measure("points", Direction::HigherIsBetter)
///     .measure("assists", Direction::HigherIsBetter)
///     .build().unwrap();
/// let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
/// let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default().with_tau(2.0));
/// monitor.ingest_raw(&["Wesley", "Celtics"], vec![12.0, 13.0]).unwrap();
/// let report = monitor.ingest_raw(&["Sherman", "Celtics"], vec![13.0, 5.0]).unwrap();
/// assert!(!report.facts.is_empty());
/// ```
#[derive(Debug)]
pub struct FactMonitor<A: Discovery> {
    table: Table,
    counter: ContextCounter,
    algorithm: A,
    config: MonitorConfig,
}

impl<A: Discovery> FactMonitor<A> {
    /// Creates a monitor over an empty table.
    pub fn new(schema: Schema, algorithm: A, config: MonitorConfig) -> Self {
        let d_hat = config.discovery.effective_d_hat(&schema);
        let counter = ContextCounter::new(schema.num_dimensions(), d_hat);
        FactMonitor {
            table: Table::new(schema),
            counter,
            algorithm,
            config,
        }
    }

    /// The underlying table (read access).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The underlying algorithm (read access, e.g. for statistics).
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// The monitor configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Ingests a tuple given as raw dimension strings plus measures.
    pub fn ingest_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<ArrivalReport> {
        let ids = self.table.schema_mut().intern_dims(dims)?;
        let tuple = Tuple::validated(ids, measures, self.table.schema())?;
        self.ingest(tuple)
    }

    /// Ingests an already-encoded tuple: discovers its facts, appends it to
    /// the table, and ranks the facts by prominence.
    pub fn ingest(&mut self, tuple: Tuple) -> Result<ArrivalReport> {
        let pairs = self.algorithm.discover(&self.table, &tuple);
        let tuple_id = self.table.append(tuple)?;
        // The appended row is observed through a zero-copy view — no
        // materialisation on the per-arrival path.
        self.counter.observe(self.table.tuple(tuple_id));

        let mut facts: Vec<RankedFact> = Vec::with_capacity(pairs.len());
        for pair in pairs {
            let context_size = self.counter.cardinality(&pair.constraint);
            let skyline_size =
                self.algorithm
                    .skyline_cardinality(&self.table, &pair.constraint, pair.subspace)
                    as u64;
            facts.push(RankedFact {
                pair,
                context_size,
                skyline_size,
            });
        }
        facts.sort_by(|a, b| {
            b.prominence()
                .partial_cmp(&a.prominence())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let max = facts.first().map(RankedFact::prominence).unwrap_or(0.0);
        let prominent_count = if max >= self.config.tau {
            facts
                .iter()
                .take_while(|f| (f.prominence() - max).abs() < f64::EPSILON)
                .count()
        } else {
            0
        };
        if let Some(keep) = self.config.keep_top {
            facts.truncate(keep.max(prominent_count));
        }
        Ok(ArrivalReport {
            tuple_id,
            facts,
            prominent_count,
        })
    }

    /// Ingests a whole batch, returning one report per tuple.
    pub fn ingest_all<I: IntoIterator<Item = Tuple>>(
        &mut self,
        tuples: I,
    ) -> Result<Vec<ArrivalReport>> {
        tuples.into_iter().map(|t| self.ingest(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_algos::{BottomUp, SBottomUp, STopDown};
    use sitfact_core::{Direction, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .measure("points", Direction::HigherIsBetter)
            .measure("assists", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    #[test]
    fn first_tuple_is_maximally_prominent_everywhere() {
        let schema = schema();
        let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default());
        let report = monitor
            .ingest_raw(&["Wesley", "Celtics"], vec![10.0, 5.0])
            .unwrap();
        // 4 constraints × 3 subspaces, all with context = skyline = 1.
        assert_eq!(report.facts.len(), 12);
        assert!(report.facts.iter().all(|f| f.prominence() == 1.0));
        assert_eq!(report.prominent_count, 12);
    }

    #[test]
    fn prominence_matches_hand_computation() {
        let schema = schema();
        let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default().with_tau(2.0));
        monitor.ingest_raw(&["A", "X"], vec![10.0, 1.0]).unwrap();
        monitor.ingest_raw(&["B", "X"], vec![8.0, 2.0]).unwrap();
        monitor.ingest_raw(&["C", "X"], vec![6.0, 3.0]).unwrap();
        // The fourth tuple tops everyone on both measures within team X.
        let report = monitor.ingest_raw(&["D", "X"], vec![12.0, 4.0]).unwrap();
        // Constraint team=X, full space: context 4 tuples, skyline {D} -> 4.
        let team_x =
            sitfact_core::Constraint::parse(monitor.table().schema(), &[("team", "X")]).unwrap();
        let full = sitfact_core::SubspaceMask::full(2);
        let fact = report
            .facts
            .iter()
            .find(|f| f.pair.constraint == team_x && f.pair.subspace == full)
            .expect("fact for (team=X, full space)");
        assert_eq!(fact.context_size, 4);
        assert_eq!(fact.skyline_size, 1);
        assert_eq!(fact.prominence(), 4.0);
        // That is also the maximal prominence, and 4 ≥ τ=2, so it is prominent.
        assert!(report.prominent_count >= 1);
        assert_eq!(report.max_prominence(), Some(4.0));
    }

    #[test]
    fn threshold_filters_prominent_facts() {
        let schema = schema();
        let algo = BottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default().with_tau(1000.0));
        monitor.ingest_raw(&["A", "X"], vec![1.0, 1.0]).unwrap();
        let report = monitor.ingest_raw(&["B", "X"], vec![2.0, 2.0]).unwrap();
        // Max prominence is 2 (context {A,B}, skyline {B}), far below τ=1000.
        assert_eq!(report.prominent_count, 0);
        assert!(report.max_prominence().unwrap() <= 2.0);
    }

    #[test]
    fn keep_top_truncates_but_preserves_prominent() {
        let schema = schema();
        let algo = STopDown::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(
            schema,
            algo,
            MonitorConfig::default().with_tau(1.0).with_keep_top(2),
        );
        monitor.ingest_raw(&["A", "X"], vec![1.0, 5.0]).unwrap();
        let report = monitor.ingest_raw(&["B", "Y"], vec![5.0, 1.0]).unwrap();
        assert!(report.facts.len() >= 2);
        assert!(report.facts.len() <= report.prominent_count.max(2));
    }

    #[test]
    fn reports_agree_across_algorithms() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        let schema = schema();
        let config = MonitorConfig::default().with_tau(2.0);
        let mut bu = FactMonitor::new(
            schema.clone(),
            SBottomUp::new(&schema, config.discovery),
            config,
        );
        let mut td = FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
        );
        for _ in 0..60 {
            let dims = vec![rng.gen_range(0..4u32), rng.gen_range(0..3u32)];
            let measures = vec![rng.gen_range(0..6) as f64, rng.gen_range(0..6) as f64];
            let a = bu
                .ingest(Tuple::new(dims.clone(), measures.clone()))
                .unwrap();
            let b = td.ingest(Tuple::new(dims, measures)).unwrap();
            // Same fact count, same maximum prominence, same prominent count —
            // regardless of the storage scheme underneath.
            assert_eq!(a.facts.len(), b.facts.len());
            assert_eq!(a.prominent_count, b.prominent_count);
            match (a.max_prominence(), b.max_prominence()) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                (x, y) => assert_eq!(x.is_none(), y.is_none()),
            }
        }
    }

    #[test]
    fn monitor_config_builders() {
        let c = MonitorConfig::case_study();
        assert_eq!(c.tau, 500.0);
        assert_eq!(c.discovery, DiscoveryConfig::capped(3, 3));
        let c = MonitorConfig::default()
            .with_tau(7.0)
            .with_keep_top(3)
            .with_discovery(DiscoveryConfig::capped(2, 2));
        assert_eq!(c.tau, 7.0);
        assert_eq!(c.keep_top, Some(3));
    }
}
