//! The [`FactMonitor`]: turn a stream of tuples into ranked situational facts.

use crate::fact::{ArrivalReport, RankedFact};
use crate::stream::StreamMonitor;
use sitfact_algos::Discovery;
use sitfact_core::{
    DiscoveryConfig, Result, Schema, SitFactError, SkylinePair, Tuple, TupleId, TupleRef,
};
use sitfact_storage::{wal, ContextCounter, PostingIndexStats, Table};

/// Configuration of a [`FactMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// The `d̂` / `m̂` caps forwarded to the discovery algorithm.
    pub discovery: DiscoveryConfig,
    /// Prominence threshold `τ`: a fact is *prominent* only if its prominence
    /// is at least this value (and is maximal among the arrival's facts).
    /// Must be finite and non-negative (see [`MonitorConfig::validate`]).
    pub tau: f64,
    /// Retain at most this many ranked facts per arrival in the report (the
    /// full set is still used to determine the maximum). `None` keeps all;
    /// `Some(0)` is rejected (it would silently discard every report's facts
    /// — use a larger cap or `None`).
    pub keep_top: Option<usize>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            discovery: DiscoveryConfig::unrestricted(),
            tau: 1.0,
            keep_top: None,
        }
    }
}

impl MonitorConfig {
    /// The configuration of the paper's case study: `d̂ = 3`, `m̂ = 3`,
    /// `τ = 500`.
    pub fn case_study() -> Self {
        MonitorConfig {
            discovery: DiscoveryConfig::capped(3, 3),
            tau: 500.0,
            keep_top: Some(32),
        }
    }

    /// Builder-style setter for `τ`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is NaN, infinite or negative — a NaN threshold would
    /// make every `max ≥ τ` comparison silently false, reporting *nothing*
    /// forever, so it is rejected at construction instead.
    pub fn with_tau(mut self, tau: f64) -> Self {
        assert!(
            tau.is_finite() && tau >= 0.0,
            "MonitorConfig::with_tau: τ must be finite and non-negative, got {tau}"
        );
        self.tau = tau;
        self
    }

    /// Builder-style setter for the discovery caps.
    pub fn with_discovery(mut self, discovery: DiscoveryConfig) -> Self {
        self.discovery = discovery;
        self
    }

    /// Builder-style setter for the per-arrival fact retention limit.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is zero: a monitor that drops every fact it ranks is
    /// never what a caller meant (pass a positive cap, or leave the limit
    /// unset to keep all facts).
    pub fn with_keep_top(mut self, keep: usize) -> Self {
        assert!(
            keep > 0,
            "MonitorConfig::with_keep_top: the retention cap must be positive \
             (omit the cap to keep every fact)"
        );
        self.keep_top = Some(keep);
        self
    }

    /// Checks the invariants the builders enforce, for configurations
    /// assembled field-by-field: `τ` finite and non-negative, `keep_top`
    /// positive when set. Monitor constructors call this, so an invalid
    /// config is rejected before it can silently swallow reports.
    pub fn validate(&self) -> Result<()> {
        if !self.tau.is_finite() || self.tau < 0.0 {
            return Err(SitFactError::InvalidConfig(format!(
                "prominence threshold τ must be finite and non-negative, got {}",
                self.tau
            )));
        }
        if self.keep_top == Some(0) {
            return Err(SitFactError::InvalidConfig(
                "keep_top = 0 would drop every ranked fact; use None to keep all".into(),
            ));
        }
        Ok(())
    }
}

/// Owns the table, the context-cardinality counter and a discovery algorithm,
/// and produces one [`ArrivalReport`] per ingested tuple.
///
/// All ingest entry points live on the [`StreamMonitor`] trait, which this
/// type implements — bring it into scope to feed the monitor.
///
/// ```
/// use sitfact_core::{Direction, SchemaBuilder, DiscoveryConfig};
/// use sitfact_algos::SBottomUp;
/// use sitfact_prominence::{FactMonitor, MonitorConfig, StreamMonitor};
///
/// let schema = SchemaBuilder::new("gamelog")
///     .dimension("player").dimension("team")
///     .measure("points", Direction::HigherIsBetter)
///     .measure("assists", Direction::HigherIsBetter)
///     .build().unwrap();
/// let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
/// let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default().with_tau(2.0));
/// monitor.ingest_raw(&["Wesley", "Celtics"], vec![12.0, 13.0]).unwrap();
/// let report = monitor.ingest_raw(&["Sherman", "Celtics"], vec![13.0, 5.0]).unwrap();
/// assert!(!report.facts.is_empty());
/// ```
#[derive(Debug)]
pub struct FactMonitor<A: Discovery> {
    table: Table,
    counter: ContextCounter,
    algorithm: A,
    config: MonitorConfig,
}

impl<A: Discovery> FactMonitor<A> {
    /// Creates a monitor over an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `config` violates [`MonitorConfig::validate`] (NaN or
    /// negative `τ`, zero `keep_top`) — the builders reject these up front,
    /// so only field-by-field construction can reach this.
    pub fn new(schema: Schema, algorithm: A, config: MonitorConfig) -> Self {
        if let Err(err) = config.validate() {
            // audit: allow(no-panic): documented panic; builders validate configs before this
            panic!("FactMonitor::new: {err}");
        }
        let d_hat = config.discovery.effective_d_hat(&schema);
        let counter = ContextCounter::new(schema.num_dimensions(), d_hat);
        FactMonitor {
            table: Table::new(schema),
            counter,
            algorithm,
            config,
        }
    }

    /// Like [`FactMonitor::new`], but over an empty table whose id space
    /// starts at `base` (see [`Table::with_base`]): tuple ids `0..base` are
    /// considered already evicted. This is the constructor the windowed ≡
    /// rebuilt-from-scratch equivalence tests use — a fresh monitor fed only
    /// a window's survivors produces reports with the *same* tuple ids as the
    /// long-running monitor that evicted its way there.
    pub fn with_base(schema: Schema, algorithm: A, config: MonitorConfig, base: TupleId) -> Self {
        let mut monitor = FactMonitor::new(schema, algorithm, config);
        monitor.table = Table::with_base(monitor.table.schema().clone(), base);
        monitor
    }

    /// The underlying table (read access).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The underlying algorithm (read access, e.g. for statistics).
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// Deep structural self-check; see [`sitfact_core::audit::Audit`].
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    pub fn audit(&self) -> std::result::Result<(), sitfact_core::AuditViolation> {
        sitfact_core::Audit::check(self)
    }

    /// Drops the pairs excluded by the config's anchor restriction (no-op for
    /// unanchored configs). Runs before ranking so excluded facts never pay
    /// the context/skyline cardinality lookups.
    fn apply_anchor(&self, pairs: &mut Vec<SkylinePair>) {
        if self.config.discovery.anchor_dim.is_some() {
            pairs.retain(|p| self.config.discovery.admits(&p.constraint));
        }
    }

    /// Ranks an arrival's discovered pairs by prominence. `tuple_id` is the
    /// arrival's id; context and skyline cardinalities are evaluated over the
    /// rows up to and including it (`limit = tuple_id + 1`), which under the
    /// sequential protocol is simply the whole table.
    fn rank_arrival(&mut self, tuple_id: TupleId, pairs: Vec<SkylinePair>) -> ArrivalReport {
        let limit = tuple_id + 1;
        let mut facts: Vec<RankedFact> = Vec::with_capacity(pairs.len());
        for pair in pairs {
            let context_size = self.counter.cardinality(&pair.constraint);
            let skyline_size = self.algorithm.skyline_cardinality_at(
                &self.table,
                &pair.constraint,
                pair.subspace,
                limit,
            ) as u64;
            facts.push(RankedFact {
                pair,
                context_size,
                skyline_size,
            });
        }
        // Canonical total order (not just descending prominence): the report
        // is then fully determined by the fact *set*, independent of the
        // algorithm's emission order — so `keep_top` truncation at a
        // prominence tie is deterministic, and a sharded monitor's reports
        // are byte-identical to the unsharded reference's.
        facts.sort_by(RankedFact::ranking_cmp);
        let max = facts.first().map(RankedFact::prominence).unwrap_or(0.0);
        let prominent_count = if max >= self.config.tau {
            facts
                .iter()
                .take_while(|f| (f.prominence() - max).abs() < f64::EPSILON)
                .count()
        } else {
            0
        };
        if let Some(keep) = self.config.keep_top {
            facts.truncate(keep.max(prominent_count));
        }
        ArrivalReport {
            tuple_id,
            facts,
            prominent_count,
        }
    }
}

impl<A: Discovery> StreamMonitor for FactMonitor<A> {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn config(&self) -> &MonitorConfig {
        &self.config
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn tuple(&self, tuple_id: TupleId) -> Option<TupleRef<'_>> {
        // Live rows only: a retracted id resolves to `None`, exactly like an
        // id that was never ingested.
        self.table.get(tuple_id)
    }

    fn live_rows(&self) -> usize {
        self.table.live_rows()
    }

    fn tombstone_rows(&self) -> usize {
        self.table.tombstone_rows()
    }

    fn evicted_rows(&self) -> usize {
        self.table.evicted_rows()
    }

    /// Retracts every tuple below the watermark target `up_to`: the rows are
    /// tombstoned in the table, forgotten by the context counter, and
    /// retracted from the algorithm's skyline store ([`Discovery::retract`]),
    /// so subsequent reports are those of a monitor that only ever saw the
    /// survivors. Tombstones are physically dropped
    /// ([`Table::compact_retracted`]) once they outnumber the live rows —
    /// the classic amortized-halving schedule, keeping memory proportional
    /// to the live window.
    fn evict_prefix(&mut self, up_to: TupleId) -> Result<usize> {
        let start = self.table.watermark();
        let newly = self.table.retract_prefix(up_to as usize);
        for id in start..start + newly as TupleId {
            self.counter.forget(self.table.tuple(id));
            self.algorithm.retract(&self.table, id)?;
        }
        if newly > 0 && self.table.tombstone_rows() >= self.table.live_rows() {
            self.table.compact_retracted();
        }
        Ok(newly)
    }

    fn encode_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<Tuple> {
        let ids = self.table.schema_mut().intern_dims(dims)?;
        Tuple::validated(ids, measures, self.table.schema())
    }

    /// Ingests an already-encoded tuple: discovers its facts, appends it to
    /// the table, and ranks the facts by prominence.
    ///
    /// When the discovery config carries an anchor
    /// ([`DiscoveryConfig::with_anchor`]), facts whose constraint does not
    /// bind the anchored attribute are dropped *before* ranking — this is the
    /// constraint space a sharded monitor is provably equivalent over (see
    /// `sitfact_core::routing`), and the dropped facts never pay the
    /// cardinality lookups either.
    fn ingest(&mut self, tuple: Tuple) -> Result<ArrivalReport> {
        // Validate before discovery: the algorithms index the tuple's
        // dimensions and would panic on a wrong-arity row, but an invalid
        // tuple must surface as an error on every StreamMonitor impl.
        tuple.validate(self.table.schema())?;
        let mut pairs = self.algorithm.discover(&self.table, &tuple);
        self.apply_anchor(&mut pairs);
        let tuple_id = self.table.append(tuple)?;
        // The appended row is observed through a zero-copy view — no
        // materialisation on the per-arrival path.
        self.counter.observe(self.table.tuple(tuple_id));
        Ok(self.rank_arrival(tuple_id, pairs))
    }

    /// Ingests a whole window of arrivals through the batched fast path,
    /// returning exactly the reports a sequential [`StreamMonitor::ingest`]
    /// loop would produce, in the same order.
    ///
    /// The window is appended to the table **once** ([`Table::append_batch`]
    /// amortises validation, column growth and posting-list maintenance),
    /// then each arrival is discovered and ranked against its true
    /// time-ordered prefix: arrival `i` sees only rows `< i` — the discovery
    /// algorithms receive the arrival's explicit id
    /// ([`Discovery::discover_at`]) and the ranking truncates any table
    /// recomputation at that id, even though later rows of the window are
    /// already physically present.
    fn ingest_batch_slice(&mut self, tuples: &[Tuple]) -> Result<Vec<ArrivalReport>> {
        if tuples.is_empty() {
            return Ok(Vec::new());
        }
        let first = self.table.next_id();
        self.table.append_batch_slice(tuples)?;
        self.algorithm.begin_batch(tuples.len());
        let mut reports = Vec::with_capacity(tuples.len());
        for (i, tuple) in tuples.iter().enumerate() {
            let tuple_id = first + i as TupleId;
            let mut pairs = self.algorithm.discover_at(&self.table, tuple, tuple_id);
            self.apply_anchor(&mut pairs);
            self.counter.observe(self.table.tuple(tuple_id));
            reports.push(self.rank_arrival(tuple_id, pairs));
        }
        self.algorithm.end_batch();
        // Window boundary: seal any posting-list tails the batch left
        // profitable to compress. Long-lived monitors (a served tenant, a
        // days-long stream) thereby keep the PR 7 block compression instead
        // of accumulating uncompressed tails; reports are representation-
        // independent, so batched ≡ sequential equivalence is unaffected.
        self.table.compact_postings();
        Ok(reports)
    }

    fn posting_stats(&self) -> PostingIndexStats {
        self.table.posting_index_stats()
    }

    /// Serializes the full monitor state when the algorithm can export its
    /// skyline store (see [`Discovery::export_store_cells`]): the table —
    /// schema dictionaries, columns and the *native* posting layout — then
    /// the store cells. The context counter is deliberately not serialized:
    /// it is denormalized state, rebuilt from the table on restore (exactly
    /// as the deep audit's ground-truth recomputation does).
    fn export_durable(&self) -> Option<Vec<u8>> {
        let cells = self.algorithm.export_store_cells()?;
        let mut out = Vec::new();
        wal::encode_table(&self.table, &mut out);
        wal::encode_cells(&cells, &mut out);
        Some(out)
    }

    fn restore_durable(&mut self, snapshot: &[u8]) -> Result<bool> {
        let mut cur = wal::ByteCursor::new(snapshot);
        let table = wal::decode_table(&mut cur)?;
        let cells = wal::decode_cells(&mut cur)?;
        if !cur.is_empty() {
            return Err(SitFactError::Parse(format!(
                "monitor snapshot has {} trailing bytes",
                cur.remaining()
            )));
        }
        // The snapshot must be shaped for this monitor: same relation name,
        // dimension attributes and measure attributes (with directions).
        // Dictionary *contents* may of course differ — that is the state
        // being restored.
        let (current, decoded) = (self.table.schema(), table.schema());
        let measures_match = decoded.measures().len() == current.measures().len()
            && decoded
                .measures()
                .iter()
                .zip(current.measures())
                .all(|(a, b)| a.name == b.name && a.direction == b.direction);
        if decoded.name() != current.name()
            || decoded.dimension_names() != current.dimension_names()
            || !measures_match
        {
            return Err(SitFactError::Parse(format!(
                "monitor snapshot is shaped for relation {:?}, not {:?}",
                decoded.name(),
                current.name()
            )));
        }
        // The algorithm import happens first: if it refuses (an algorithm
        // without state import), the monitor is left untouched and the
        // caller falls back to replaying the full log.
        self.algorithm.import_store_cells(cells)?;
        let mut counter = ContextCounter::new(
            decoded.num_dimensions(),
            self.config.discovery.effective_d_hat(table.schema()),
        );
        counter.observe_batch(table.iter().map(|(_, view)| view));
        self.counter = counter;
        self.table = table;
        Ok(true)
    }
}

/// Re-derives the monitor's denormalized state from the table: a fresh
/// [`ContextCounter`] rebuilt from the rows must agree with the incrementally
/// maintained one entry-for-entry (same constraints, same cardinalities),
/// after the table passes its own deep audit.
#[cfg(any(test, debug_assertions, feature = "deep-audit"))]
impl<A: Discovery> sitfact_core::Audit for FactMonitor<A> {
    fn check(&self) -> std::result::Result<(), sitfact_core::AuditViolation> {
        use sitfact_core::AuditViolation;
        let fail = |invariant: &'static str, detail: String| {
            Err(AuditViolation::new("FactMonitor", invariant, detail))
        };
        self.table.audit()?;
        if self.counter.observed_tuples() != self.table.live_rows() as u64 {
            return fail(
                "counter-observed-len",
                format!(
                    "counter observed {} tuples, table holds {} live rows",
                    self.counter.observed_tuples(),
                    self.table.live_rows()
                ),
            );
        }
        let schema = self.table.schema();
        let mut rebuilt = ContextCounter::new(
            schema.num_dimensions(),
            self.config.discovery.effective_d_hat(schema),
        );
        rebuilt.observe_batch(self.table.iter().map(|(_, view)| view));
        if rebuilt.tracked_constraints() != self.counter.tracked_constraints() {
            return fail(
                "counter-rebuildable",
                format!(
                    "counter tracks {} constraints, a rebuild from the table tracks {}",
                    self.counter.tracked_constraints(),
                    rebuilt.tracked_constraints()
                ),
            );
        }
        for (constraint, count) in self.counter.iter_counts() {
            let truth = rebuilt.cardinality(constraint);
            if truth != count {
                return fail(
                    "counter-rebuildable",
                    format!(
                        "counter says |σ_{constraint:?}| = {count}, rebuilding from the \
                         table gives {truth}"
                    ),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_algos::{BottomUp, SBottomUp, STopDown};
    use sitfact_core::{Direction, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .measure("points", Direction::HigherIsBetter)
            .measure("assists", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    #[test]
    fn first_tuple_is_maximally_prominent_everywhere() {
        let schema = schema();
        let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default());
        let report = monitor
            .ingest_raw(&["Wesley", "Celtics"], vec![10.0, 5.0])
            .unwrap();
        // 4 constraints × 3 subspaces, all with context = skyline = 1.
        assert_eq!(report.facts.len(), 12);
        assert!(report.facts.iter().all(|f| f.prominence() == 1.0));
        assert_eq!(report.prominent_count, 12);
    }

    #[test]
    fn prominence_matches_hand_computation() {
        let schema = schema();
        let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default().with_tau(2.0));
        monitor.ingest_raw(&["A", "X"], vec![10.0, 1.0]).unwrap();
        monitor.ingest_raw(&["B", "X"], vec![8.0, 2.0]).unwrap();
        monitor.ingest_raw(&["C", "X"], vec![6.0, 3.0]).unwrap();
        // The fourth tuple tops everyone on both measures within team X.
        let report = monitor.ingest_raw(&["D", "X"], vec![12.0, 4.0]).unwrap();
        // Constraint team=X, full space: context 4 tuples, skyline {D} -> 4.
        let team_x = sitfact_core::Constraint::parse(monitor.schema(), &[("team", "X")]).unwrap();
        let full = sitfact_core::SubspaceMask::full(2);
        let fact = report
            .facts
            .iter()
            .find(|f| f.pair.constraint == team_x && f.pair.subspace == full)
            .expect("fact for (team=X, full space)");
        assert_eq!(fact.context_size, 4);
        assert_eq!(fact.skyline_size, 1);
        assert_eq!(fact.prominence(), 4.0);
        // That is also the maximal prominence, and 4 ≥ τ=2, so it is prominent.
        assert!(report.prominent_count >= 1);
        assert_eq!(report.max_prominence(), Some(4.0));
    }

    #[test]
    fn threshold_filters_prominent_facts() {
        let schema = schema();
        let algo = BottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default().with_tau(1000.0));
        monitor.ingest_raw(&["A", "X"], vec![1.0, 1.0]).unwrap();
        let report = monitor.ingest_raw(&["B", "X"], vec![2.0, 2.0]).unwrap();
        // Max prominence is 2 (context {A,B}, skyline {B}), far below τ=1000.
        assert_eq!(report.prominent_count, 0);
        assert!(report.max_prominence().unwrap() <= 2.0);
    }

    #[test]
    fn keep_top_truncates_but_preserves_prominent() {
        let schema = schema();
        let algo = STopDown::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(
            schema,
            algo,
            MonitorConfig::default().with_tau(1.0).with_keep_top(2),
        );
        monitor.ingest_raw(&["A", "X"], vec![1.0, 5.0]).unwrap();
        let report = monitor.ingest_raw(&["B", "Y"], vec![5.0, 1.0]).unwrap();
        assert!(report.facts.len() >= 2);
        assert!(report.facts.len() <= report.prominent_count.max(2));
    }

    #[test]
    fn reports_agree_across_algorithms() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        let schema = schema();
        let config = MonitorConfig::default().with_tau(2.0);
        let mut bu = FactMonitor::new(
            schema.clone(),
            SBottomUp::new(&schema, config.discovery),
            config,
        );
        let mut td = FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
        );
        for _ in 0..60 {
            let dims = vec![rng.gen_range(0..4u32), rng.gen_range(0..3u32)];
            let measures = vec![rng.gen_range(0..6) as f64, rng.gen_range(0..6) as f64];
            let a = bu
                .ingest(Tuple::new(dims.clone(), measures.clone()))
                .unwrap();
            let b = td.ingest(Tuple::new(dims, measures)).unwrap();
            // Same fact count, same maximum prominence, same prominent count —
            // regardless of the storage scheme underneath.
            assert_eq!(a.facts.len(), b.facts.len());
            assert_eq!(a.prominent_count, b.prominent_count);
            match (a.max_prominence(), b.max_prominence()) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                (x, y) => assert_eq!(x.is_none(), y.is_none()),
            }
        }
    }

    #[test]
    fn ingest_batch_equals_sequential_ingest() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(271);
        let schema = schema();
        let config = MonitorConfig::default().with_tau(2.0).with_keep_top(16);
        let mut sequential = FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
        );
        let mut batched = FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
        );
        // Several windows of varying size, so batches compose across calls.
        for window_len in [1usize, 7, 20, 3] {
            let window: Vec<Tuple> = (0..window_len)
                .map(|_| {
                    Tuple::new(
                        vec![rng.gen_range(0..4u32), rng.gen_range(0..3u32)],
                        vec![rng.gen_range(0..6) as f64, rng.gen_range(0..6) as f64],
                    )
                })
                .collect();
            let expected = sequential.ingest_all(window.clone()).unwrap();
            let actual = batched.ingest_batch(window).unwrap();
            // Identical reports: ids, fact order, cardinalities, counts.
            assert_eq!(actual, expected);
        }
        assert_eq!(batched.len(), sequential.len());
    }

    #[test]
    fn ingest_batch_is_atomic_and_empty_safe() {
        let schema = schema();
        let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default());
        assert!(monitor.ingest_batch(Vec::new()).unwrap().is_empty());
        monitor.ingest_raw(&["A", "X"], vec![1.0, 1.0]).unwrap();
        let window = vec![
            Tuple::new(vec![0, 0], vec![2.0, 2.0]),
            Tuple::new(vec![0], vec![3.0, 3.0]), // bad arity
        ];
        assert!(monitor.ingest_batch(window).is_err());
        // The invalid window left no trace.
        assert_eq!(monitor.len(), 1);
        let report = monitor.ingest_raw(&["B", "X"], vec![2.0, 2.0]).unwrap();
        assert_eq!(report.tuple_id, 1);
    }

    #[test]
    fn ingest_batch_empty_window_is_noop() {
        let schema = schema();
        let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default());
        monitor.ingest_raw(&["A", "X"], vec![1.0, 1.0]).unwrap();
        let len_before = monitor.len();
        let reports = monitor.ingest_batch(Vec::new()).unwrap();
        assert!(reports.is_empty());
        // A true no-op: nothing appended, nothing observed, and the returned
        // vec is the unallocated `Vec::new()` (capacity 0), so an idle feed
        // polling with empty windows costs nothing.
        assert_eq!(reports.capacity(), 0);
        assert_eq!(monitor.len(), len_before);
        let reports = monitor.ingest_batch_slice(&[]).unwrap();
        assert!(reports.is_empty() && reports.capacity() == 0);
        // The next arrival gets the id it would have had without the empty
        // windows in between.
        let report = monitor.ingest_raw(&["B", "X"], vec![2.0, 2.0]).unwrap();
        assert_eq!(report.tuple_id, 1);
    }

    #[test]
    fn evict_prefix_matches_a_monitor_fed_only_survivors() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(431);
        let schema = schema();
        let config = MonitorConfig::default().with_tau(2.0);
        let random_tuple = |rng: &mut StdRng| {
            Tuple::new(
                vec![rng.gen_range(0..4u32), rng.gen_range(0..3u32)],
                vec![rng.gen_range(0..6) as f64, rng.gen_range(0..6) as f64],
            )
        };
        let mut windowed = FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
        );
        let tuples: Vec<Tuple> = (0..48).map(|_| random_tuple(&mut rng)).collect();
        windowed.ingest_batch_slice(&tuples).unwrap();
        assert_eq!(windowed.evict_prefix(20).unwrap(), 20);
        // Watermark targets are monotone: re-evicting is a no-op.
        assert_eq!(windowed.evict_prefix(20).unwrap(), 0);
        assert_eq!(windowed.live_rows(), 28);
        assert_eq!(windowed.len(), 48);
        assert!(windowed.tuple(5).is_none(), "retracted ids resolve to None");
        assert!(windowed.tuple(25).is_some());
        windowed.audit().unwrap();
        // A fresh monitor over the surviving suffix, id space aligned.
        let mut rebuilt = FactMonitor::with_base(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
            20,
        );
        rebuilt.ingest_batch_slice(&tuples[20..]).unwrap();
        // Subsequent arrivals produce byte-identical reports on both.
        for _ in 0..10 {
            let t = random_tuple(&mut rng);
            let a = windowed.ingest(t.clone()).unwrap();
            let b = rebuilt.ingest(t).unwrap();
            assert_eq!(a, b);
        }
        // Evicting past the halfway point triggers physical compaction.
        windowed.evict_prefix(40).unwrap();
        assert_eq!(windowed.evicted_rows(), 40);
        assert_eq!(windowed.tombstone_rows(), 0);
        windowed.audit().unwrap();
    }

    #[test]
    fn anchored_config_reports_only_anchored_facts() {
        let schema = schema();
        let discovery = DiscoveryConfig::unrestricted().with_anchor(1); // team
        let config = MonitorConfig::default()
            .with_discovery(discovery)
            .with_tau(1.0);
        let algo = STopDown::new(&schema, discovery);
        let mut anchored = FactMonitor::new(schema.clone(), algo, config);
        let algo = STopDown::new(&schema, DiscoveryConfig::unrestricted());
        let mut unanchored =
            FactMonitor::new(schema.clone(), algo, MonitorConfig::default().with_tau(1.0));
        let rows: [(&[&str; 2], [f64; 2]); 4] = [
            (&["A", "X"], [10.0, 1.0]),
            (&["B", "Y"], [8.0, 2.0]),
            (&["A", "Y"], [6.0, 3.0]),
            (&["C", "X"], [12.0, 4.0]),
        ];
        for (dims, measures) in rows {
            let got = anchored.ingest_raw(dims, measures.to_vec()).unwrap();
            let all = unanchored.ingest_raw(dims, measures.to_vec()).unwrap();
            // Every reported fact binds the anchored attribute …
            assert!(
                got.facts.iter().all(|f| f.pair.constraint.binds(1)),
                "unanchored fact leaked"
            );
            // … and the anchored report is exactly the unanchored one with
            // the non-binding facts removed (same order, same cardinalities).
            let expected: Vec<_> = all
                .facts
                .iter()
                .filter(|f| f.pair.constraint.binds(1))
                .cloned()
                .collect();
            assert_eq!(got.facts, expected);
        }
    }

    #[test]
    fn encode_raw_interns_without_ingesting() {
        let schema = schema();
        let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default());
        let t = monitor
            .encode_raw(&["Wesley", "Celtics"], vec![1.0, 2.0])
            .unwrap();
        assert_eq!(monitor.len(), 0);
        assert!(monitor.is_empty());
        assert!(monitor.encode_raw(&["Wesley"], vec![1.0, 2.0]).is_err());
        let reports = monitor.ingest_batch(vec![t]).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(monitor.len(), 1);
    }

    #[test]
    fn tuple_by_id_resolves_or_declines() {
        let schema = schema();
        let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default());
        assert!(monitor.tuple(0).is_none());
        monitor.ingest_raw(&["A", "X"], vec![3.0, 4.0]).unwrap();
        let view = monitor.tuple(0).expect("tuple 0 exists");
        assert_eq!(view.measures(), &[3.0, 4.0]);
        assert!(monitor.tuple(1).is_none());
    }

    #[test]
    fn monitor_config_builders() {
        let c = MonitorConfig::case_study();
        assert_eq!(c.tau, 500.0);
        assert_eq!(c.discovery, DiscoveryConfig::capped(3, 3));
        let c = MonitorConfig::default()
            .with_tau(7.0)
            .with_keep_top(3)
            .with_discovery(DiscoveryConfig::capped(2, 2));
        assert_eq!(c.tau, 7.0);
        assert_eq!(c.keep_top, Some(3));
        assert!(c.validate().is_ok());
        // τ = 0 is explicitly allowed: every maximal fact is prominent.
        assert!(MonitorConfig::default().with_tau(0.0).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn with_tau_rejects_nan() {
        let _ = MonitorConfig::default().with_tau(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn with_tau_rejects_negative() {
        let _ = MonitorConfig::default().with_tau(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn with_tau_rejects_infinite() {
        let _ = MonitorConfig::default().with_tau(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn with_keep_top_rejects_zero() {
        let _ = MonitorConfig::default().with_keep_top(0);
    }

    #[test]
    fn validate_rejects_field_level_violations() {
        let config = MonitorConfig {
            tau: f64::NAN,
            ..MonitorConfig::default()
        };
        assert!(matches!(
            config.validate(),
            Err(SitFactError::InvalidConfig(_))
        ));
        let config = MonitorConfig {
            tau: -3.0,
            ..MonitorConfig::default()
        };
        assert!(config.validate().is_err());
        let config = MonitorConfig {
            keep_top: Some(0),
            ..MonitorConfig::default()
        };
        assert!(matches!(
            config.validate(),
            Err(SitFactError::InvalidConfig(_))
        ));
    }

    #[test]
    #[should_panic(expected = "invalid config: prominence threshold")]
    fn fact_monitor_new_rejects_invalid_config() {
        // Field-level construction bypasses the builder's check on purpose.
        let config = MonitorConfig {
            tau: f64::NAN,
            ..MonitorConfig::default()
        };
        let schema = schema();
        let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let _ = FactMonitor::new(schema, algo, config);
    }
}
