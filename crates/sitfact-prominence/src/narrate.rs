//! Rendering situational facts as English sentences, in the spirit of the
//! paper's motivating examples ("the first Pacers player with a 20/10/5 game
//! against the Bulls since …").

use crate::fact::RankedFact;
use sitfact_core::{Schema, TupleView};

/// Narrates one ranked fact about `tuple` as a sentence.
///
/// The sentence lists the tuple's values on the fact's measure subspace, the
/// context it stands out in, and how selective the fact is, e.g.:
///
/// > `points=38, assists=16 — undominated among the 1,204 tuples where
/// > player=Iverson ∧ month=Apr (one of 2 skyline tuples; prominence 602.0)`
///
/// Accepts any [`TupleView`] — an owned tuple, a `&Tuple`, or the table's
/// zero-copy [`TupleRef`](sitfact_core::TupleRef) rows.
pub fn narrate(schema: &Schema, tuple: impl TupleView, fact: &RankedFact) -> String {
    let measures: Vec<String> = fact
        .pair
        .subspace
        .indices()
        .map(|i| {
            format!(
                "{}={}",
                schema.measures()[i].name,
                format_number(tuple.measure(i))
            )
        })
        .collect();
    let context = if fact.pair.constraint.is_top() {
        "all tuples".to_string()
    } else {
        format!("the tuples where {}", fact.pair.constraint.display(schema))
    };
    let skyline_phrase = if fact.skyline_size <= 1 {
        "the only skyline tuple".to_string()
    } else {
        format!("one of {} skyline tuples", fact.skyline_size)
    };
    format!(
        "{} — undominated among the {} tuple(s) in {} ({}; prominence {:.1})",
        measures.join(", "),
        fact.context_size,
        context,
        skyline_phrase,
        fact.prominence()
    )
}

fn format_number(x: f64) -> String {
    if (x.fract()).abs() < 1e-9 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_core::{Constraint, Direction, SchemaBuilder, SkylinePair, SubspaceMask, Tuple};

    #[test]
    fn narration_mentions_measures_context_and_prominence() {
        let mut schema = SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .measure("points", Direction::HigherIsBetter)
            .measure("assists", Direction::HigherIsBetter)
            .build()
            .unwrap();
        let dims = schema.intern_dims(&["Iverson", "Sixers"]).unwrap();
        let tuple = Tuple::new(dims, vec![38.0, 16.5]);
        let constraint = Constraint::parse(&schema, &[("player", "Iverson")]).unwrap();
        let fact = RankedFact {
            pair: SkylinePair::new(constraint, SubspaceMask::full(2)),
            context_size: 1204,
            skyline_size: 2,
        };
        let text = narrate(&schema, &tuple, &fact);
        assert!(text.contains("points=38"));
        assert!(text.contains("assists=16.50"));
        assert!(text.contains("player=Iverson"));
        assert!(text.contains("1204 tuple(s)"));
        assert!(text.contains("one of 2 skyline tuples"));
        assert!(text.contains("602.0"));
    }

    #[test]
    fn top_constraint_and_singleton_skyline_phrasing() {
        let schema = SchemaBuilder::new("s")
            .dimension("d")
            .measure("m", Direction::HigherIsBetter)
            .build()
            .unwrap();
        let tuple = Tuple::new(vec![0], vec![54.0]);
        let fact = RankedFact {
            pair: SkylinePair::new(Constraint::top(1), SubspaceMask::full(1)),
            context_size: 317,
            skyline_size: 1,
        };
        let text = narrate(&schema, &tuple, &fact);
        assert!(text.contains("all tuples"));
        assert!(text.contains("the only skyline tuple"));
        assert!(text.contains("m=54"));
    }
}
