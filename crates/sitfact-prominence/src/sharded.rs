//! The [`ShardedMonitor`]: partition the arrival stream across independent
//! [`FactMonitor`] shards and fan batched windows out in parallel.
//!
//! ## Why sharding is sound (and when it is not)
//!
//! Each shard owns its own table and only ever sees the arrivals routed to it,
//! so any fact whose context `σ_C(R)` mixes tuples from different shards would
//! come out wrong. Routing on a dimension attribute `r` makes exactly the
//! facts *binding* `r` safe: all tuples sharing the arriving tuple's value of
//! `r` live on the same shard, so those contexts are complete there.
//! Sharding is therefore only sound for constraint templates where the
//! routing dimension is bound in every emitted fact — the monitor enforces
//! this by anchoring the discovery config on the routing attribute
//! ([`sitfact_core::routing::ensure_routable`]), and the unsharded monitor it
//! is provably equivalent to is the one running the *same anchored config*.
//! Facts that leave `r` unbound (the top constraint `⊤`, "best of the whole
//! league" facts) are outside the sharded constraint space by construction;
//! serve those from an unsharded monitor instead.
//!
//! ## Parallelism
//!
//! A batched window ([`StreamMonitor::ingest_batch`]) is partitioned by
//! routing value and handed to the shards through a
//! [`ThreadPool`]: each shard is *moved* into
//! its task together with its sub-window and moved back with its reports
//! (ownership transfer instead of scoped borrows keeps everything
//! `unsafe`-free). Reports come back in global arrival order with global
//! tuple ids, byte-identical to what the unsharded monitor would have
//! produced: the ranking orders each report's facts by the canonical total
//! order ([`RankedFact::ranking_cmp`](crate::RankedFact::ranking_cmp)), so a
//! report depends only on the discovered fact *set* — never on the emission
//! order, which legitimately differs between a shard and the unsharded
//! monitor (their pruning paths differ).

use crate::fact::ArrivalReport;
use crate::monitor::{FactMonitor, MonitorConfig};
use crate::stream::StreamMonitor;
use sitfact_algos::Discovery;
use sitfact_core::pool::ThreadPool;
use sitfact_core::{
    routing, DimValueId, FxBuildHasher, Result, Schema, SitFactError, Tuple, TupleId, TupleRef,
};
use std::hash::BuildHasher;

/// A router over `N` independent [`FactMonitor`] shards, partitioning the
/// stream by one dimension attribute.
///
/// All ingest entry points live on the [`StreamMonitor`] trait — a sharded
/// monitor is fed exactly like an unsharded one, which is what lets callers
/// hold either behind `Box<dyn StreamMonitor>` and make sharding a pure
/// deployment choice.
///
/// The discovery config is anchored on the routing attribute, so the merged
/// per-arrival reports are identical to an unsharded [`FactMonitor`] running
/// the same anchored config — that is the routing-soundness restriction
/// documented on the module. The doctest below is exactly that equivalence:
///
/// ```
/// use sitfact_core::{Direction, SchemaBuilder};
/// use sitfact_algos::STopDown;
/// use sitfact_prominence::{FactMonitor, MonitorConfig, ShardedMonitor, StreamMonitor};
///
/// let schema = SchemaBuilder::new("gamelog")
///     .dimension("player")
///     .dimension("team")
///     .measure("points", Direction::HigherIsBetter)
///     .build()
///     .unwrap();
/// // Route by team across 2 shards; the config is auto-anchored on `team`,
/// // restricting reports to facts that bind the routing attribute.
/// let mut sharded = ShardedMonitor::by_attribute(
///     schema.clone(),
///     "team",
///     2,
///     MonitorConfig::default().with_tau(1.0),
///     STopDown::new,
/// )
/// .unwrap();
/// assert_eq!(sharded.config().discovery.anchor_dim, Some(1));
///
/// // The unsharded reference monitor over the *same anchored* space.
/// let anchored = *sharded.config();
/// let mut reference =
///     FactMonitor::new(schema.clone(), STopDown::new(&schema, anchored.discovery), anchored);
///
/// for (dims, points) in [
///     (["A", "X"], 10.0),
///     (["B", "Y"], 8.0),
///     (["C", "X"], 12.0),
///     (["A", "Y"], 11.0),
/// ] {
///     let sharded_report = sharded.ingest_raw(&dims, vec![points]).unwrap();
///     let reference_report = reference.ingest_raw(&dims, vec![points]).unwrap();
///     assert_eq!(sharded_report, reference_report);
/// }
/// ```
#[derive(Debug)]
pub struct ShardedMonitor<A: Discovery + Send + 'static> {
    /// Master schema: interns raw rows, resolves ids for narration. The
    /// shards hold clones made at construction; their dictionaries are never
    /// consulted (tuples arrive pre-encoded), so only this copy grows.
    schema: Schema,
    routing_dim: usize,
    config: MonitorConfig,
    shards: Vec<FactMonitor<A>>,
    /// Global tuple id → (shard index, shard-local tuple id).
    locations: Vec<(u32, TupleId)>,
    pool: ThreadPool,
}

impl<A: Discovery + Send + 'static> ShardedMonitor<A> {
    /// Creates a monitor with `num_shards` shards routed on the dimension
    /// attribute at index `routing_dim`.
    ///
    /// `config.discovery` must either be unanchored (it is then anchored on
    /// `routing_dim` automatically) or anchored on exactly `routing_dim`;
    /// anything else is rejected as routing-unsound. `make_algo` builds one
    /// discovery algorithm per shard from the schema and the anchored config.
    pub fn new(
        schema: Schema,
        routing_dim: usize,
        num_shards: usize,
        mut config: MonitorConfig,
        make_algo: impl Fn(&Schema, sitfact_core::DiscoveryConfig) -> A,
    ) -> Result<Self> {
        if num_shards == 0 {
            return Err(SitFactError::InvalidConfig(
                "a sharded monitor needs at least one shard".into(),
            ));
        }
        config.validate()?;
        config.discovery = routing::ensure_routable(config.discovery, &schema, routing_dim)?;
        let shards = (0..num_shards)
            .map(|_| FactMonitor::new(schema.clone(), make_algo(&schema, config.discovery), config))
            .collect();
        let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Ok(ShardedMonitor {
            schema,
            routing_dim,
            config,
            shards,
            locations: Vec::new(),
            pool: ThreadPool::new(num_shards.min(hardware)),
        })
    }

    /// [`ShardedMonitor::new`] with the routing attribute given by name.
    pub fn by_attribute(
        schema: Schema,
        routing_attr: &str,
        num_shards: usize,
        config: MonitorConfig,
        make_algo: impl Fn(&Schema, sitfact_core::DiscoveryConfig) -> A,
    ) -> Result<Self> {
        let dim = schema.dimension_index(routing_attr).ok_or_else(|| {
            SitFactError::InvalidConfig(format!(
                "unknown routing attribute `{routing_attr}` in schema `{}`",
                schema.name()
            ))
        })?;
        Self::new(schema, dim, num_shards, config, make_algo)
    }

    /// Index of the routing dimension attribute.
    pub fn routing_dim(&self) -> usize {
        self.routing_dim
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to the shards (e.g. for per-shard statistics).
    pub fn shards(&self) -> &[FactMonitor<A>] {
        &self.shards
    }

    /// The shard that owns `routing_value`. Stable for the monitor's
    /// lifetime: a deterministic hash of the value modulo the shard count.
    pub fn shard_of(&self, routing_value: DimValueId) -> usize {
        self.assert_usable();
        (FxBuildHasher::default().hash_one(routing_value) % self.shards.len() as u64) as usize
    }

    /// Where a globally-numbered tuple lives: `(shard index, local id)`.
    pub fn locate(&self, tuple_id: TupleId) -> Option<(usize, TupleId)> {
        self.assert_usable();
        let (shard, local) = *self.locations.get(tuple_id as usize)?;
        Some((shard as usize, local))
    }

    /// The shared core of both batch forms: validates and partitions `n`
    /// owned tuples into per-shard windows (by move — the owned entry point
    /// pays no clones), then fans out and merges. Validation precedes any
    /// dispatch, so a failure anywhere leaves every shard untouched
    /// (all-or-nothing).
    fn partition_dispatch(
        &mut self,
        n: usize,
        tuples: impl Iterator<Item = Tuple>,
    ) -> Result<Vec<ArrivalReport>> {
        let n_shards = self.shards.len();
        let mut windows: Vec<Vec<Tuple>> = (0..n_shards).map(|_| Vec::new()).collect();
        let mut positions: Vec<Vec<usize>> = (0..n_shards).map(|_| Vec::new()).collect();
        // Routing values by global position, for the merge's
        // routing-consistency check.
        let mut route_values: Vec<DimValueId> = Vec::with_capacity(n);
        for (i, tuple) in tuples.enumerate() {
            // Validate before touching the routing dimension (a wrong-arity
            // tuple may not have one); an error here only drops the local
            // windows — nothing was ingested yet.
            tuple.validate(&self.schema)?;
            let value = tuple.dim(self.routing_dim);
            let shard = self.shard_of(value);
            route_values.push(value);
            windows[shard].push(tuple);
            positions[shard].push(i);
        }
        self.dispatch_windows(windows, positions, route_values)
    }

    /// Fans pre-validated, pre-partitioned windows out to the shards and
    /// merges the reports back into global arrival order.
    fn dispatch_windows(
        &mut self,
        windows: Vec<Vec<Tuple>>,
        positions: Vec<Vec<usize>>,
        route_values: Vec<DimValueId>,
    ) -> Result<Vec<ArrivalReport>> {
        // Fan out: move each shard with its sub-window onto the pool; a shard
        // with an empty sub-window returns immediately. If a shard panics the
        // pool re-raises here and the monitor stays poisoned (shards lost) —
        // subsequent calls fail fast in `assert_usable`.
        let owned: Vec<FactMonitor<A>> = self.shards.drain(..).collect();
        type ShardResult<A> = (FactMonitor<A>, Result<Vec<ArrivalReport>>);
        let tasks: Vec<Box<dyn FnOnce() -> ShardResult<A> + Send>> = owned
            .into_iter()
            .zip(windows)
            .map(|(mut monitor, window)| {
                Box::new(move || {
                    let reports = monitor.ingest_batch(window);
                    (monitor, reports)
                }) as Box<dyn FnOnce() -> ShardResult<A> + Send>
            })
            .collect();
        let results = self.pool.run_all(tasks);

        // Restore every shard, then check every outcome *before* touching the
        // global id map. Pre-validation makes a shard-level error
        // unreachable; if one ever occurs, some shards have ingested rows the
        // map will never cover, so the monitor poisons itself (fail fast on
        // later calls) rather than continuing with irreconcilable state.
        let mut outcomes = Vec::with_capacity(results.len());
        for (monitor, outcome) in results {
            self.shards.push(monitor);
            outcomes.push(outcome);
        }
        if let Some(err_at) = outcomes.iter().position(|o| o.is_err()) {
            self.shards.clear();
            let Some(Err(error)) = outcomes.into_iter().nth(err_at) else {
                unreachable!("position() found an Err at this index");
            };
            return Err(error);
        }

        // Merge: shard-local reports → global order, global ids. Every
        // placeholder is overwritten because each position belongs to exactly
        // one shard's sub-window.
        let total = route_values.len();
        let base = self.locations.len();
        let mut merged: Vec<Option<ArrivalReport>> = (0..total).map(|_| None).collect();
        self.locations
            .extend(std::iter::repeat_n((u32::MAX, 0), total));
        for (shard, outcome) in outcomes.into_iter().enumerate() {
            // audit: allow(no-panic): the error pass over `outcomes` above returned early
            let reports = outcome.expect("errors were handled above");
            debug_assert_eq!(reports.len(), positions[shard].len());
            for (j, mut report) in reports.into_iter().enumerate() {
                let pos = positions[shard][j];
                let local_id = report.tuple_id;
                self.check_routing(&report, route_values[pos]);
                report.tuple_id = (base + pos) as TupleId;
                self.locations[base + pos] = (shard as u32, local_id);
                merged[pos] = Some(report);
            }
        }
        Ok(merged
            .into_iter()
            // audit: allow(no-panic): each position was routed to exactly one shard batch
            .map(|r| r.expect("every arrival produced exactly one report"))
            .collect())
    }

    /// The routing-consistency check of `sitfact_core::routing`: every fact a
    /// shard reports must bind the routing attribute to the arriving tuple's
    /// own value — never to a different shard's value, never leave it
    /// unbound. Debug builds verify every report; violations mean the
    /// anchor/routing plumbing is broken, so release builds skip the scan.
    fn check_routing(&self, report: &ArrivalReport, routing_value: DimValueId) {
        debug_assert!(
            report.facts.iter().all(|fact| routing::is_routable(
                &fact.pair.constraint,
                self.routing_dim,
                routing_value
            )),
            "shard emitted a fact that does not bind the routing attribute to its own value"
        );
        let _ = (report, routing_value);
    }

    fn assert_usable(&self) {
        assert!(
            !self.shards.is_empty(),
            "ShardedMonitor is poisoned: a shard panicked during an earlier parallel ingest"
        );
    }

    /// Deep structural self-check; see [`sitfact_core::audit::Audit`].
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    pub fn audit(&self) -> std::result::Result<(), sitfact_core::AuditViolation> {
        sitfact_core::Audit::check(self)
    }
}

/// Re-derives the global-to-local routing table: `locations` must be a
/// bijection onto the shard rows, every recorded shard must be the one
/// [`ShardedMonitor::shard_of`] routes the tuple's routing value to, and
/// every shard must pass its own [`FactMonitor`] audit.
#[cfg(any(test, debug_assertions, feature = "deep-audit"))]
impl<A: Discovery + Send + 'static> sitfact_core::Audit for ShardedMonitor<A> {
    fn check(&self) -> std::result::Result<(), sitfact_core::AuditViolation> {
        use sitfact_core::AuditViolation;
        let fail = |invariant: &'static str, detail: String| {
            Err(AuditViolation::new("ShardedMonitor", invariant, detail))
        };
        if self.shards.is_empty() {
            if self.locations.is_empty() {
                // A poisoned monitor with no history is merely unusable.
                return Ok(());
            }
            return fail(
                "poisoned-with-history",
                format!(
                    "no shards remain but {} tuples are still located",
                    self.locations.len()
                ),
            );
        }
        let total: usize = self.shards.iter().map(|s| s.table().len()).sum();
        if total != self.locations.len() {
            return fail(
                "location-coverage",
                format!(
                    "shards hold {total} rows in total but {} global ids are located",
                    self.locations.len()
                ),
            );
        }
        let mut seen: Vec<Vec<bool>> = self
            .shards
            .iter()
            .map(|s| vec![false; s.table().len()])
            .collect();
        for (global, &(shard, local)) in self.locations.iter().enumerate() {
            let Some(monitor) = self.shards.get(shard as usize) else {
                return fail(
                    "location-in-range",
                    format!(
                        "global id {global} routes to shard {shard} of {}",
                        self.shards.len()
                    ),
                );
            };
            if local as usize >= monitor.table().len() {
                return fail(
                    "location-in-range",
                    format!(
                        "global id {global} routes to row {local} of shard {shard}, which \
                         holds {} rows",
                        monitor.table().len()
                    ),
                );
            }
            if std::mem::replace(&mut seen[shard as usize][local as usize], true) {
                return fail(
                    "location-bijective",
                    format!(
                        "shard {shard} row {local} is claimed by global id {global} and an \
                         earlier global id"
                    ),
                );
            }
            let value = monitor.table().tuple(local).dim(self.routing_dim);
            let expect = self.shard_of(value);
            if expect != shard as usize {
                return fail(
                    "routing-consistent",
                    format!(
                        "global id {global} (routing value {value}) lives on shard {shard} \
                         but shard_of routes it to {expect}"
                    ),
                );
            }
        }
        for (index, monitor) in self.shards.iter().enumerate() {
            if let Err(violation) = monitor.audit() {
                return fail(
                    "shard-audit",
                    format!("shard {index}: {}", violation.explain()),
                );
            }
        }
        Ok(())
    }
}

impl<A: Discovery + Send + 'static> StreamMonitor for ShardedMonitor<A> {
    /// The master schema (grows as raw rows are interned).
    fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The effective (anchored) monitor configuration every shard runs.
    fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Total number of tuples ingested across all shards.
    fn len(&self) -> usize {
        self.locations.len()
    }

    /// Zero-copy view of a globally-numbered tuple (resolve its dimension
    /// strings against [`StreamMonitor::schema`]).
    fn tuple(&self, tuple_id: TupleId) -> Option<TupleRef<'_>> {
        let (shard, local) = self.locate(tuple_id)?;
        Some(self.shards[shard].table().tuple(local))
    }

    fn encode_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<Tuple> {
        let ids = self.schema.intern_dims(dims)?;
        Tuple::validated(ids, measures, &self.schema)
    }

    /// Routes one already-encoded tuple to its shard and ingests it there,
    /// returning the report with its global tuple id.
    fn ingest(&mut self, tuple: Tuple) -> Result<ArrivalReport> {
        self.assert_usable();
        tuple.validate(&self.schema)?;
        let routing_value = tuple.dim(self.routing_dim);
        let shard = self.shard_of(routing_value);
        let local_id = self.shards[shard].table().next_id();
        let mut report = self.shards[shard].ingest(tuple)?;
        debug_assert_eq!(report.tuple_id, local_id);
        self.check_routing(&report, routing_value);
        report.tuple_id = self.locations.len() as TupleId;
        self.locations.push((shard as u32, local_id));
        Ok(report)
    }

    /// Ingests a whole window through all shards **in parallel**: the window
    /// is partitioned by routing value (one clone per tuple — shard windows
    /// need owned tuples; callers holding an owned window should prefer
    /// [`StreamMonitor::ingest_batch`], which partitions by move), every
    /// shard ingests its sub-window through the batched fast path on the
    /// pool, and the reports are merged back into global arrival order with
    /// global tuple ids.
    ///
    /// An empty window is a no-op returning an empty vec. Validation is
    /// all-or-nothing against the master schema before any shard is touched.
    fn ingest_batch_slice(&mut self, tuples: &[Tuple]) -> Result<Vec<ArrivalReport>> {
        self.assert_usable();
        if tuples.is_empty() {
            return Ok(Vec::new());
        }
        self.partition_dispatch(tuples.len(), tuples.iter().cloned())
    }

    /// Overrides the provided slice-forwarding default: an owned window is
    /// partitioned **by move**, so the hot path (e.g. the TCP server's
    /// `INGEST_BATCH`) pays zero per-tuple clones. Both forms share
    /// `partition_dispatch`; only the iterator differs.
    fn ingest_batch(&mut self, tuples: Vec<Tuple>) -> Result<Vec<ArrivalReport>> {
        self.assert_usable();
        if tuples.is_empty() {
            return Ok(Vec::new());
        }
        let n = tuples.len();
        self.partition_dispatch(n, tuples.into_iter())
    }

    /// Posting-index footprint summed over all shards. Each shard compacts
    /// its own tails at its batch-window boundaries (see
    /// [`FactMonitor::ingest_batch_slice`](crate::FactMonitor)), so the
    /// sealed/tail split reported here reflects per-shard compaction state.
    fn posting_stats(&self) -> sitfact_storage::PostingIndexStats {
        let mut total = sitfact_storage::PostingIndexStats::default();
        for shard in &self.shards {
            let stats = shard.posting_stats();
            total.lists += stats.lists;
            total.ids += stats.ids;
            total.sealed_blocks += stats.sealed_blocks;
            total.tail_ids += stats.tail_ids;
            total.compressed_bytes += stats.compressed_bytes;
            total.uncompressed_bytes += stats.uncompressed_bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_algos::{SBottomUp, STopDown};
    use sitfact_core::{Direction, DiscoveryConfig, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .dimension("month")
            .measure("points", Direction::HigherIsBetter)
            .measure("assists", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    fn rows(n: usize, seed: u64) -> Vec<Tuple> {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Tuple::new(
                    vec![
                        rng.gen_range(0..5u32),
                        rng.gen_range(0..3u32),
                        rng.gen_range(0..4u32),
                    ],
                    vec![rng.gen_range(0..8) as f64, rng.gen_range(0..8) as f64],
                )
            })
            .collect()
    }

    fn sharded(num_shards: usize) -> ShardedMonitor<STopDown> {
        ShardedMonitor::new(
            schema(),
            1, // team
            num_shards,
            MonitorConfig::default().with_tau(1.0),
            STopDown::new,
        )
        .unwrap()
    }

    fn reference() -> FactMonitor<STopDown> {
        let schema = schema();
        let discovery = DiscoveryConfig::unrestricted().with_anchor(1);
        let config = MonitorConfig::default()
            .with_tau(1.0)
            .with_discovery(discovery);
        FactMonitor::new(schema.clone(), STopDown::new(&schema, discovery), config)
    }

    fn assert_equivalent(actual: Vec<ArrivalReport>, expected: Vec<ArrivalReport>) {
        // Byte-identical, order included: the ranking's canonical total
        // order makes each report a pure function of its fact set.
        assert_eq!(actual, expected);
    }

    #[test]
    fn construction_validates_routing() {
        // Unknown attribute name.
        assert!(ShardedMonitor::by_attribute(
            schema(),
            "city",
            2,
            MonitorConfig::default(),
            STopDown::new
        )
        .is_err());
        // Zero shards.
        assert!(
            ShardedMonitor::new(schema(), 1, 0, MonitorConfig::default(), STopDown::new).is_err()
        );
        // Config anchored off the routing attribute is routing-unsound.
        let conflicting =
            MonitorConfig::default().with_discovery(DiscoveryConfig::unrestricted().with_anchor(0));
        assert!(ShardedMonitor::new(schema(), 1, 2, conflicting, STopDown::new).is_err());
        // Anchored *on* the routing attribute is accepted, as is unanchored.
        let aligned =
            MonitorConfig::default().with_discovery(DiscoveryConfig::unrestricted().with_anchor(1));
        assert!(ShardedMonitor::new(schema(), 1, 2, aligned, STopDown::new).is_ok());
        let monitor = sharded(3);
        assert_eq!(monitor.config().discovery.anchor_dim, Some(1));
        assert_eq!(monitor.num_shards(), 3);
        assert_eq!(monitor.routing_dim(), 1);
    }

    #[test]
    fn construction_validates_monitor_config() {
        // An invalid MonitorConfig is rejected with an error, not a panic,
        // because ShardedMonitor::new is already fallible.
        let config = MonitorConfig {
            tau: f64::NAN,
            ..MonitorConfig::default()
        };
        assert!(matches!(
            ShardedMonitor::new(schema(), 1, 2, config, STopDown::new),
            Err(SitFactError::InvalidConfig(_))
        ));
        let config = MonitorConfig {
            keep_top: Some(0),
            ..MonitorConfig::default()
        };
        assert!(ShardedMonitor::new(schema(), 1, 2, config, STopDown::new).is_err());
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let monitor = sharded(3);
        for value in 0..100u32 {
            let s = monitor.shard_of(value);
            assert!(s < 3);
            assert_eq!(s, monitor.shard_of(value));
        }
        // Every tuple with the same routing value lands on the same shard.
        let one = sharded(1);
        assert_eq!(one.shard_of(7), 0);
    }

    #[test]
    fn per_arrival_ingest_matches_unsharded_reference() {
        for num_shards in [1, 2, 4] {
            let mut monitor = sharded(num_shards);
            let mut unsharded = reference();
            let stream = rows(40, 11);
            let actual = monitor.ingest_all(stream.clone()).unwrap();
            let expected = unsharded.ingest_all(stream).unwrap();
            assert_equivalent(actual, expected);
            assert_eq!(monitor.len(), 40);
        }
    }

    #[test]
    fn parallel_batches_match_unsharded_reference() {
        for num_shards in [1, 2, 5] {
            let mut monitor = sharded(num_shards);
            let mut unsharded = reference();
            let stream = rows(60, 23);
            let mut actual = Vec::new();
            for window in stream.chunks(13) {
                actual.extend(monitor.ingest_batch_slice(window).unwrap());
            }
            let expected = unsharded.ingest_all(stream).unwrap();
            assert_equivalent(actual, expected);
        }
    }

    #[test]
    fn keep_top_truncation_is_shard_invariant() {
        // keep_top truncates at a prominence tie; the canonical ranking
        // order makes the surviving facts identical no matter which side of
        // the shard boundary discovered them first.
        let config = MonitorConfig::default().with_tau(1.0).with_keep_top(2);
        let mut monitor = ShardedMonitor::new(schema(), 1, 3, config, STopDown::new).unwrap();
        let anchored = *monitor.config();
        let s = schema();
        let mut unsharded =
            FactMonitor::new(s.clone(), STopDown::new(&s, anchored.discovery), anchored);
        let stream = rows(50, 41);
        let actual = monitor.ingest_batch(stream.clone()).unwrap();
        let expected = unsharded.ingest_all(stream).unwrap();
        assert_equivalent(actual, expected);
    }

    #[test]
    fn batch_and_per_arrival_interleave() {
        let mut batched = sharded(3);
        let mut sequential = sharded(3);
        let stream = rows(30, 5);
        let from_batches = batched.ingest_batch(stream.clone()).unwrap();
        let one_by_one = sequential.ingest_all(stream).unwrap();
        assert_eq!(from_batches, one_by_one);
        // Global ids are the arrival order, regardless of shard placement.
        assert!(from_batches
            .iter()
            .enumerate()
            .all(|(i, r)| r.tuple_id == i as TupleId));
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut monitor = sharded(2);
        monitor
            .ingest_raw(&["A", "X", "Jan"], vec![1.0, 2.0])
            .unwrap();
        let reports = monitor.ingest_batch(Vec::new()).unwrap();
        assert!(reports.is_empty());
        assert_eq!(monitor.len(), 1);
        let report = monitor
            .ingest_raw(&["B", "Y", "Jan"], vec![2.0, 1.0])
            .unwrap();
        assert_eq!(report.tuple_id, 1);
    }

    #[test]
    fn invalid_window_is_rejected_before_any_shard_ingests() {
        let mut monitor = sharded(2);
        monitor
            .ingest_raw(&["A", "X", "Jan"], vec![1.0, 2.0])
            .unwrap();
        let window = vec![
            Tuple::new(vec![0, 0, 0], vec![3.0, 3.0]),
            Tuple::new(vec![0, 1], vec![4.0, 4.0]), // bad arity
        ];
        assert!(monitor.ingest_batch(window).is_err());
        assert_eq!(monitor.len(), 1);
        assert!(
            monitor
                .shards()
                .iter()
                .map(|s| s.table().len())
                .sum::<usize>()
                == 1
        );
        // NaN measures are also caught up front.
        let window = vec![Tuple::new(vec![0, 0, 0], vec![f64::NAN, 1.0])];
        assert!(monitor.ingest_batch(window).is_err());
        assert_eq!(monitor.len(), 1);
    }

    #[test]
    fn locate_and_tuple_resolve_global_ids() {
        let mut monitor = sharded(3);
        let stream = rows(25, 77);
        monitor.ingest_batch(stream.clone()).unwrap();
        for (i, original) in stream.iter().enumerate() {
            let (shard, local) = monitor.locate(i as TupleId).unwrap();
            assert!(shard < 3);
            let view = monitor.tuple(i as TupleId).unwrap();
            assert_eq!(view.dims(), original.dims());
            assert_eq!(view.measures(), original.measures());
            assert_eq!(
                monitor.shards()[shard].table().tuple(local).dims(),
                original.dims()
            );
        }
        assert!(monitor.locate(25).is_none());
        assert!(monitor.tuple(25).is_none());
        assert!(!monitor.is_empty());
    }

    #[test]
    fn works_with_other_algorithms() {
        let mut monitor: ShardedMonitor<SBottomUp> = ShardedMonitor::new(
            schema(),
            1,
            2,
            MonitorConfig::default().with_tau(1.0),
            SBottomUp::new,
        )
        .unwrap();
        let schema = schema();
        let discovery = DiscoveryConfig::unrestricted().with_anchor(1);
        let mut unsharded = FactMonitor::new(
            schema.clone(),
            SBottomUp::new(&schema, discovery),
            MonitorConfig::default()
                .with_tau(1.0)
                .with_discovery(discovery),
        );
        let stream = rows(30, 3);
        let actual = monitor.ingest_batch(stream.clone()).unwrap();
        let expected = unsharded.ingest_all(stream).unwrap();
        assert_equivalent(actual, expected);
    }
}
