//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its plain-old-data
//! types so that downstream users of the real serde ecosystem get wire
//! formats for free, but nothing *inside* the workspace serializes anything.
//! With no crates.io access, these derives expand to nothing: the attribute
//! positions stay valid (and documented as serde-ready), while no trait
//! impls are emitted — see the `serde` vendored crate for the marker traits.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
