//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the (small) subset of rand 0.8's API that the
//! workspace actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] for deterministic test and generator
//!   seeding;
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! * [`Rng::gen_bool`];
//! * [`rngs::StdRng`] as the one concrete generator.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for the workloads here (the datagen test-suite checks moments of
//! normal/Poisson/Zipf samples drawn through it). It is **not** a
//! cryptographic RNG, and the stream differs from upstream `StdRng`
//! (which is ChaCha12); seeds reproduce within this workspace only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the only primitive every other method is
/// derived from is a uniform `u64` stream.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a `f64` uniform in `[0, 1)` (53-bit precision).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A type whose values can be drawn uniformly from a range.
///
/// The single blanket impl of [`SampleRange`] over `Range<T>` /
/// `RangeInclusive<T>` (mirroring upstream rand's design) is what lets type
/// inference resolve `gen_range(0.6..1.1)` from the surrounding expression.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from the half-open range `[start, end)`.
    fn sample_range<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;

    /// Draws uniformly from the closed range `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        T::sample_inclusive(start, end, rng)
    }
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end as i128).wrapping_sub(start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((start as i128) + offset as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = ((end as i128) - (start as i128) + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((start as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                let v = start + u * (end - start);
                // Rounding (notably the f64→f32 cast of `u`, which can round
                // to exactly 1.0) may land on the excluded upper bound; clamp
                // back inside the half-open interval.
                if v < end {
                    v
                } else {
                    end.next_down().max(start)
                }
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                // For floats the closed upper bound is approximated by the
                // half-open draw, as upstream effectively does.
                Self::sample_range(start, end, rng)
            }
        }
    )*};
}

impl_float_sample_uniform!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64 as its authors recommend.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the 64-bit seed into the 256-bit state.
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// The usual glob-import surface: `use rand::prelude::*;`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(0..3u32);
            assert!(v < 3);
            let w = rng.gen_range(5..=9i64);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn float_ranges_exclude_the_upper_bound() {
        // A u64 whose top 53 bits are all ones maximizes unit_f64; the f32
        // cast of that value rounds to exactly 1.0, which must still be
        // clamped inside the half-open range.
        struct MaxRng;
        impl crate::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = MaxRng;
        let f: f32 = rng.gen_range(0.0f32..1.0);
        assert!((0.0..1.0).contains(&f), "f32 draw escaped the range: {f}");
        let d: f64 = rng.gen_range(0.0f64..1.0);
        assert!((0.0..1.0).contains(&d), "f64 draw escaped the range: {d}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((11_500..13_500).contains(&hits), "hits {hits}");
    }
}
