//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of criterion's API the workspace's benches use:
//! [`Criterion::benchmark_group`], group knobs (`sample_size`,
//! `warm_up_time`, `measurement_time`), [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is honest but deliberately simple: each benchmark warms up for
//! `warm_up_time`, then runs batches until `measurement_time` elapses and
//! reports the mean and best per-iteration latency on stdout. There is no
//! statistical analysis, HTML report, or saved baseline — the figure binaries
//! under `src/bin/` are the workspace's real experiment pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement clocks (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock measurement marker.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    report: Option<(u64, Duration, Duration)>,
}

impl Bencher {
    /// Times `payload`, first warming up, then measuring batches until the
    /// configured measurement window elapses.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        let warm_up_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_up_end {
            black_box(payload());
        }

        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        while total < self.measurement {
            let start = Instant::now();
            black_box(payload());
            let elapsed = start.elapsed();
            iters += 1;
            total += elapsed;
            best = best.min(elapsed);
        }
        self.report = Some((iters, total, best));
    }
}

/// A named group of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the nominal sample count (accepted for API compatibility; the
    /// stand-in sizes batches by `measurement_time` alone).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets how long each benchmark is measured.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut payload: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| payload(b))
    }

    /// Runs one benchmark that receives a shared input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut payload: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| payload(b, input))
    }

    fn run(&mut self, id: BenchmarkId, mut payload: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            report: None,
        };
        payload(&mut bencher);
        match bencher.report {
            Some((iters, total, best)) if iters > 0 => {
                let mean = total / u32::try_from(iters).unwrap_or(u32::MAX).max(1);
                println!(
                    "{}/{}: {} iters, mean {:?}, best {:?}",
                    self.name, id.id, iters, mean, best
                );
            }
            _ => println!("{}/{}: no measurement (empty bench body)", self.name, id.id),
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a benchmark group with default timing (1s warm-up, 3s measure).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: Duration::from_secs(1),
            measurement: Duration::from_secs(3),
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Runs a single free-standing benchmark with default timing.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, payload: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, payload);
        group.finish();
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("t");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran);
    }
}
