//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! Provides [`BytesMut`] as a thin growable byte buffer plus the [`Buf`] /
//! [`BufMut`] traits with the little-endian accessors the file-backed skyline
//! store uses to encode cell files. Semantics match the upstream crate for
//! this subset (including `Buf for &[u8]` advancing the slice in place);
//! zero-copy reference counting is deliberately out of scope.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with at least `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer, retaining its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

/// Write-side accessors (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` in little-endian order.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side accessors (subset of `bytes::Buf`). Reading advances the
/// cursor; for `&[u8]` the slice itself is advanced in place.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing past them. Panics if fewer
    /// than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "Buf::copy_to_slice: not enough bytes ({} requested, {} remaining)",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_le_values() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(7);
        buf.put_f64_le(-2.5);
        buf.put_u64_le(u64::MAX);
        buf.put_u8(9);
        assert_eq!(buf.len(), 21);

        let mut data: &[u8] = &buf;
        assert_eq!(data.remaining(), 21);
        assert_eq!(data.get_u32_le(), 7);
        assert_eq!(data.get_f64_le(), -2.5);
        assert_eq!(data.get_u64_le(), u64::MAX);
        assert_eq!(data.get_u8(), 9);
        assert_eq!(data.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "not enough bytes")]
    fn underflow_panics() {
        let mut data: &[u8] = &[1, 2];
        let _ = data.get_u32_le();
    }
}
