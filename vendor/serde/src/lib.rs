//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! keeps the workspace's `use serde::{Deserialize, Serialize}` imports and
//! `#[derive(Serialize, Deserialize)]` attributes compiling without pulling
//! the real dependency. The traits are empty markers and the derives are
//! no-ops; swapping in the real serde later is a one-line change in the
//! workspace manifest, with no source edits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Trait and derive-macro namespaces are distinct, so — exactly as in real
// serde — `Serialize` names both the trait and the derive.
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Stand-in for the `serde::de` module.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use crate::Serialize;
}
