//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest's API that `tests/property_tests.rs`
//! uses: [`Strategy`] over integer ranges, tuples of strategies,
//! [`Strategy::prop_map`], [`prop::collection::vec`], the [`proptest!`]
//! macro with `#![proptest_config(...)]`, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Cases are generated from a deterministic per-test seed (derived from the
//! test's name), so failures reproduce across runs. The one upstream feature
//! deliberately omitted is *shrinking*: a failing case is reported as-is via
//! the panic message rather than minimized.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::prelude::*;
use std::ops::Range;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ $(,)?)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (S0.0),
    (S0.0, S1.1),
    (S0.0, S1.1, S2.2),
    (S0.0, S1.1, S2.2, S3.3),
    (S0.0, S1.1, S2.2, S3.3, S4.4),
);

/// A number-of-elements specification for collection strategies: either an
/// exact length (`3`) or a half-open range of lengths (`1..40`).
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange(exact..exact + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        SizeRange(range)
    }
}

/// Collection strategies (`prop::collection` upstream).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::prelude::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirror of upstream's `proptest::prop` facade module.
pub mod prop {
    pub use crate::collection;
}

#[doc(hidden)]
pub fn __rng_for_test(test_name: &str) -> StdRng {
    // FNV-1a over the test name: any fixed, deterministic seed works; tying
    // it to the name decorrelates the case streams of different tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over `cases` generated
/// argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // `$meta` re-emits the original attributes, `#[test]` included.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::__rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let run = || -> Result<(), String> {
                    $body
                    Ok(())
                };
                if let Err(message) = run() {
                    panic!("proptest case {case} failed: {message}");
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case with a
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 0u32..4, b in -3i32..3) {
            prop_assert!(a < 4);
            prop_assert!((-3..3).contains(&b));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u32..5, 0u32..5).prop_map(|(x, y)| x + y), 1..10),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for x in v {
                prop_assert!(x <= 8);
            }
        }
    }

    #[test]
    fn seeds_are_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::__rng_for_test("x");
        let mut b = crate::__rng_for_test("x");
        let s = 0u32..1000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
